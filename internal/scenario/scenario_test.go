package scenario

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

func TestCatalogMatchesTableII(t *testing.T) {
	cat := Catalog()
	if len(cat) != 26 {
		t.Fatalf("catalog has %d scenarios, Table II lists 26", len(cat))
	}
	want := []string{
		"FCFS", "SJF", "Mixed", "Deadline", "LowLoad", "HighLoad",
		"DeadlineH", "Expanding", "Precise", "Accuracy25", "AccuracyBad",
		"iFCFS", "iSJF", "iMixed", "iDeadline", "iLowLoad", "iHighLoad",
		"iDeadlineH", "iExpanding", "iInform1", "iInform4", "iInform15m",
		"iInform30m", "iPrecise", "iAccuracy25", "iAccuracyBad",
	}
	for i, name := range want {
		if cat[i].Name != name {
			t.Fatalf("catalog[%d] = %s, want %s", i, cat[i].Name, name)
		}
	}
}

func TestCatalogAllValid(t *testing.T) {
	for _, c := range Catalog() {
		if err := c.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", c.Name, err)
		}
	}
}

func TestCatalogNamingConvention(t *testing.T) {
	// Every scenario whose name starts with "i" has rescheduling on, and
	// vice versa (the paper's naming convention).
	for _, c := range Catalog() {
		wantResched := c.Name[0] == 'i'
		if c.Rescheduling() != wantResched {
			t.Errorf("scenario %s: rescheduling=%v violates naming convention",
				c.Name, c.Rescheduling())
		}
	}
}

func TestCatalogVariations(t *testing.T) {
	get := func(name string) Config {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if c := get("LowLoad"); c.Submission.Interval != 20*time.Second {
		t.Errorf("LowLoad interval %v", c.Submission.Interval)
	}
	if c := get("HighLoad"); c.Submission.Interval != 5*time.Second {
		t.Errorf("HighLoad interval %v", c.Submission.Interval)
	}
	if c := get("iInform1"); c.Protocol.InformJobs != 1 {
		t.Errorf("iInform1 informs %d", c.Protocol.InformJobs)
	}
	if c := get("iInform4"); c.Protocol.InformJobs != 4 {
		t.Errorf("iInform4 informs %d", c.Protocol.InformJobs)
	}
	if c := get("iInform15m"); c.Protocol.RescheduleThreshold != 15*time.Minute {
		t.Errorf("iInform15m threshold %v", c.Protocol.RescheduleThreshold)
	}
	if c := get("iInform30m"); c.Protocol.RescheduleThreshold != 30*time.Minute {
		t.Errorf("iInform30m threshold %v", c.Protocol.RescheduleThreshold)
	}
	if c := get("Precise"); c.ART.Mode != job.DriftNone {
		t.Errorf("Precise mode %v", c.ART.Mode)
	}
	if c := get("Accuracy25"); c.ART.Epsilon != 0.25 {
		t.Errorf("Accuracy25 epsilon %v", c.ART.Epsilon)
	}
	if c := get("AccuracyBad"); c.ART.Mode != job.DriftOptimistic {
		t.Errorf("AccuracyBad mode %v", c.ART.Mode)
	}
	if c := get("Expanding"); c.Expanding == nil || c.Expanding.ExtraNodes != 200 {
		t.Errorf("Expanding config %+v", c.Expanding)
	}
	if c := get("DeadlineH"); c.DeadlineSlack != 2*time.Hour+30*time.Minute {
		t.Errorf("DeadlineH slack %v", c.DeadlineSlack)
	}
	if c := get("Mixed"); len(c.Policies) != 2 {
		t.Errorf("Mixed policies %v", c.Policies)
	}
	if c := get("iDeadline"); c.Policies[0] != sched.EDF || !c.Rescheduling() {
		t.Errorf("iDeadline misconfigured")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown scenario")
	}
}

func TestBaselineIsIMixed(t *testing.T) {
	if Baseline().Name != "iMixed" {
		t.Fatalf("baseline is %s", Baseline().Name)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no name", func(c *Config) { c.Name = "" }},
		{"one node", func(c *Config) { c.Nodes = 1 }},
		{"no policies", func(c *Config) { c.Policies = nil }},
		{"bad policy", func(c *Config) { c.Policies = []sched.Policy{0} }},
		{"class mismatch", func(c *Config) { c.Policies = []sched.Policy{sched.EDF} }},
		{"no horizon", func(c *Config) { c.Horizon = 0 }},
		{"no sampling", func(c *Config) { c.SampleInterval = 0 }},
		{"bad submission", func(c *Config) { c.Submission.Count = 0 }},
		{"bad protocol", func(c *Config) { c.Protocol.RequestTTL = 0 }},
		{"bad art", func(c *Config) { c.ART.Epsilon = 9 }},
		{"bad expanding", func(c *Config) { c.Expanding = &Expanding{} }},
		{"deadline without slack", func(c *Config) {
			c.Policies = []sched.Policy{sched.EDF}
			c.Class = job.ClassDeadline
			c.DeadlineSlack = 0
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Baseline()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("Validate accepted broken config")
			}
		})
	}
}

func TestScaled(t *testing.T) {
	c := Baseline().Scaled(0.1)
	if c.Nodes != 50 {
		t.Fatalf("scaled nodes %d", c.Nodes)
	}
	if c.Submission.Count != 100 {
		t.Fatalf("scaled jobs %d", c.Submission.Count)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	tiny := Baseline().Scaled(0.001)
	if tiny.Nodes < 16 || tiny.Submission.Count < 20 {
		t.Fatalf("floors not applied: %d nodes %d jobs", tiny.Nodes, tiny.Submission.Count)
	}
	exp, err := ByName("iExpanding")
	if err != nil {
		t.Fatal(err)
	}
	sexp := exp.Scaled(0.1)
	if sexp.Expanding == nil || sexp.Expanding.ExtraNodes != 20 {
		t.Fatalf("scaled expanding %+v", sexp.Expanding)
	}
}

// smallScenario is a fast configuration exercising the full pipeline.
func smallScenario(t *testing.T, name string) Config {
	t.Helper()
	c, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.06) // 30 nodes, 60 jobs
	sc.Submission.Interval = 5 * time.Second
	sc.Horizon = sc.Submission.End() + 30*time.Hour
	return sc
}

func TestRunMixedSmall(t *testing.T) {
	c := smallScenario(t, "Mixed")
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != c.Submission.Count {
		t.Fatalf("submitted %d, want %d", res.Submitted, c.Submission.Count)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d (failed %d)", res.Completed, res.Submitted, res.Failed)
	}
	if res.Reschedules != 0 {
		t.Fatalf("reschedules %d in a non-rescheduling scenario", res.Reschedules)
	}
	if res.AvgCompletion <= 0 || res.AvgExecution <= 0 {
		t.Fatalf("degenerate durations: %+v", res)
	}
	if res.AvgCompletion < res.AvgExecution {
		t.Fatal("completion time below execution time")
	}
	if len(res.CompletedSeries) == 0 || len(res.IdleSeries) == 0 {
		t.Fatal("series missing")
	}
	last := res.CompletedSeries[len(res.CompletedSeries)-1]
	if last != res.Completed {
		t.Fatalf("series tail %d != completed %d", last, res.Completed)
	}
	if res.Traffic[core.MsgRequest].Count == 0 || res.Traffic[core.MsgAssign].Count == 0 {
		t.Fatalf("missing traffic: %+v", res.Traffic)
	}
	if res.Traffic[core.MsgInform].Count != 0 {
		t.Fatal("INFORM traffic present with rescheduling off")
	}
	if res.TotalBytes == 0 || res.BandwidthBPS <= 0 {
		t.Fatal("traffic accounting empty")
	}
}

func TestRunIMixedSmallReschedules(t *testing.T) {
	c := smallScenario(t, "iMixed")
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
	if res.Traffic[core.MsgInform].Count == 0 {
		t.Fatal("no INFORM traffic in a rescheduling scenario")
	}
	if res.Reschedules == 0 {
		t.Fatal("no reschedules happened in iMixed")
	}
}

func TestRunDeadlineSmall(t *testing.T) {
	c := smallScenario(t, "Deadline")
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineJobs != res.Completed {
		t.Fatalf("deadline jobs %d != completed %d", res.DeadlineJobs, res.Completed)
	}
	if res.AvgLateness <= 0 && res.MissedDeadlines == 0 {
		t.Fatal("deadline accounting empty")
	}
}

func TestRunExpandingSmall(t *testing.T) {
	c := smallScenario(t, "iExpanding")
	c.Expanding.Start = 10 * time.Minute
	c.Expanding.Interval = 30 * time.Second
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := c.Nodes + c.Expanding.ExtraNodes
	if res.Nodes != wantNodes {
		t.Fatalf("final nodes %d, want %d", res.Nodes, wantNodes)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
}

func TestRunDeterministic(t *testing.T) {
	c := smallScenario(t, "iMixed")
	a, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.AvgCompletion != b.AvgCompletion ||
		a.TotalBytes != b.TotalBytes || a.Reschedules != b.Reschedules {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunsDifferAcrossIndices(t *testing.T) {
	c := smallScenario(t, "Mixed")
	a, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed == b.Seed {
		t.Fatal("run indices share a seed")
	}
	if a.AvgCompletion == b.AvgCompletion && a.TotalBytes == b.TotalBytes {
		t.Fatal("different runs produced identical results (suspicious)")
	}
}

func TestRunNAggregates(t *testing.T) {
	c := smallScenario(t, "Mixed")
	agg, results, err := RunN(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || agg.Runs != 3 {
		t.Fatalf("runs %d/%d", len(results), agg.Runs)
	}
	if agg.Completed.Mean != float64(c.Submission.Count) {
		t.Fatalf("mean completed %v, want all %d", agg.Completed.Mean, c.Submission.Count)
	}
	if len(agg.CompletedSeries) == 0 || len(agg.IdleSeries) == 0 {
		t.Fatal("aggregate series missing")
	}
	if _, _, err := RunN(c, 0); err == nil {
		t.Fatal("RunN accepted zero runs")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	c := Baseline()
	c.Nodes = 0
	if _, err := Run(c, 0); err == nil {
		t.Fatal("Run accepted invalid config")
	}
}

func TestExtensionScenariosValid(t *testing.T) {
	exts := ExtensionScenarios()
	if len(exts) < 6 {
		t.Fatalf("extensions = %d, want at least 6", len(exts))
	}
	for _, c := range exts {
		if err := c.Validate(); err != nil {
			t.Errorf("extension %s invalid: %v", c.Name, err)
		}
	}
}

func TestExtensionTopologyRuns(t *testing.T) {
	for _, name := range []string{"iMixed-random", "iMixed-smallworld"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := c.Scaled(0.06)
		sc.Submission.Interval = 5 * time.Second
		res, err := Run(sc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != res.Submitted {
			t.Fatalf("%s: completed %d of %d", name, res.Completed, res.Submitted)
		}
	}
}

func TestExtensionPoliciesRun(t *testing.T) {
	c, err := ByName("iPolicies4")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.06)
	sc.Submission.Interval = 5 * time.Second
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
}

func TestExtensionFailsafeRuns(t *testing.T) {
	c, err := ByName("iFailsafe")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.06)
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d (failed %d)", res.Completed, res.Submitted, res.Failed)
	}
}

func TestExpandingRejectsNonBlatantTopology(t *testing.T) {
	c, err := ByName("iExpanding")
	if err != nil {
		t.Fatal(err)
	}
	c.Topology = overlay.TopologyRing
	if err := c.Validate(); err == nil {
		t.Fatal("expanding scenario accepted a ring topology")
	}
}

func TestChurnLosesJobsWithoutFailsafe(t *testing.T) {
	c, err := ByName("iChurn")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.08) // 40 nodes
	sc.Churn = &Churn{Kills: 12, Start: 10 * time.Minute, Interval: time.Minute}
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed >= res.Submitted {
		t.Fatalf("no jobs lost to churn: %d of %d", res.Completed, res.Submitted)
	}
}

func TestChurnFailsafeRecoversJobs(t *testing.T) {
	// Same config and name (hence same seeds and workload) with the
	// failsafe toggled: the failsafe run must recover the vast majority
	// of submissions despite the crashes.
	base, err := ByName("iChurn")
	if err != nil {
		t.Fatal(err)
	}
	cfg := base.Scaled(0.08)
	cfg.Churn = &Churn{Kills: 12, Start: 10 * time.Minute, Interval: time.Minute}

	var plainDone, safeDone, submitted int
	for run := 0; run < 3; run++ {
		plain := cfg
		res, err := Run(plain, run)
		if err != nil {
			t.Fatal(err)
		}
		plainDone += res.Completed
		submitted += res.Submitted

		safe := cfg
		safe.Protocol.NotifyInitiator = true
		sres, err := Run(safe, run)
		if err != nil {
			t.Fatal(err)
		}
		safeDone += sres.Completed
	}
	if safeDone < plainDone {
		t.Fatalf("failsafe hurt: %d vs %d completed over 3 runs", safeDone, plainDone)
	}
	if frac := float64(safeDone) / float64(submitted); frac < 0.9 {
		t.Fatalf("failsafe recovered only %.0f%% of jobs (%d/%d)", frac*100, safeDone, submitted)
	}
}

func TestReservationScenarioRuns(t *testing.T) {
	c, err := ByName("iReservations")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.06)
	d, err := Prepare(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.ScheduleSubmissions(ARiASubmit)
	res := d.Finish()
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
	reserved := 0
	for _, o := range d.Recorder.Outcomes() {
		if o.EarliestStart == 0 {
			continue
		}
		reserved++
		if o.StartedAt < o.EarliestStart {
			t.Fatalf("job %s started at %v before its %v reservation",
				o.UUID.Short(), o.StartedAt, o.EarliestStart)
		}
	}
	// About a quarter of the jobs should carry reservations.
	if frac := float64(reserved) / float64(res.Completed); frac < 0.1 || frac > 0.45 {
		t.Fatalf("reserved fraction %.2f far from configured 0.25", frac)
	}
}

// TestPaperShapeFullScale is the paper-fidelity regression test: at full
// 500-node/1000-job scale, the headline Fig. 2 comparison must hold —
// dynamic rescheduling shortens completion by cutting waiting. Skipped
// under -short (one run takes several seconds).
func TestPaperShapeFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	mixedCfg, err := ByName("Mixed")
	if err != nil {
		t.Fatal(err)
	}
	iMixedCfg, err := ByName("iMixed")
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Run(mixedCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	iMixed, err := Run(iMixedCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Completed != 1000 || iMixed.Completed != 1000 {
		t.Fatalf("completions %d/%d, want all 1000", mixed.Completed, iMixed.Completed)
	}
	if iMixed.AvgCompletion >= mixed.AvgCompletion {
		t.Fatalf("rescheduling did not shorten completion: %v vs %v",
			iMixed.AvgCompletion, mixed.AvgCompletion)
	}
	if iMixed.AvgWaiting >= mixed.AvgWaiting {
		t.Fatalf("rescheduling did not cut waiting: %v vs %v",
			iMixed.AvgWaiting, mixed.AvgWaiting)
	}
	if iMixed.Reschedules == 0 {
		t.Fatal("no rescheduling at paper scale")
	}
	// Fig. 10 headline: ~3 MB per node over the 42 h horizon.
	perNodeMB := iMixed.BytesPerNode / (1 << 20)
	if perNodeMB < 1 || perNodeMB > 6 {
		t.Fatalf("per-node traffic %.2f MB far from the paper's ~3 MB", perNodeMB)
	}
}

func TestMaintenanceKeepsOverlayHealthyUnderChurn(t *testing.T) {
	c, err := ByName("iChurn")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.08)
	sc.Churn = &Churn{Kills: 10, Start: 10 * time.Minute, Interval: time.Minute}
	sc.MaintenanceInterval = 5 * time.Minute
	d, err := Prepare(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.ScheduleSubmissions(ARiASubmit)
	res := d.Finish()
	g := d.Cluster.Graph()
	// Corpses were removed from the graph and the manager kept it
	// connected around them.
	if g.NumNodes() != sc.Nodes-10 {
		t.Fatalf("graph has %d nodes, want %d after churn", g.NumNodes(), sc.Nodes-10)
	}
	if !g.Connected() {
		t.Fatal("overlay disconnected despite maintenance rounds")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestMultiReqScenario(t *testing.T) {
	c, err := ByName("MultiReq3")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.06)
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
	// The §II critique made measurable: copies are revoked constantly.
	if res.Traffic[core.MsgCancel].Count == 0 {
		t.Fatal("multi-request run produced no CANCEL traffic")
	}
	// Triple assignment shows up on the wire.
	if res.Traffic[core.MsgAssign].Count < int64(2*res.Submitted) {
		t.Fatalf("ASSIGN count %d too low for triple assignment of %d jobs",
			res.Traffic[core.MsgAssign].Count, res.Submitted)
	}
}

func TestSitesScenarioRuns(t *testing.T) {
	c, err := ByName("iMixed-sites10")
	if err != nil {
		t.Fatal(err)
	}
	sc := c.Scaled(0.06)
	res, err := Run(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
}

func TestSelectionAblationScenariosRun(t *testing.T) {
	for _, name := range []string{"iSelectNewest", "iSelectCostliest"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := c.Scaled(0.05)
		res, err := Run(sc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != res.Submitted {
			t.Fatalf("%s: completed %d of %d", name, res.Completed, res.Submitted)
		}
	}
}

func TestScenarioNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range append(Catalog(), ExtensionScenarios()...) {
		if seen[c.Name] {
			t.Fatalf("duplicate scenario name %q", c.Name)
		}
		seen[c.Name] = true
	}
}
