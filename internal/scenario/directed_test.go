package scenario

import (
	"testing"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/metrics"
)

// directoryOff strips the directed-discovery plane from a config, leaving
// everything else (membership, churn, workload) identical — the flood-only
// control arm. The name is deliberately kept: runSeed hashes it, and the
// two arms must draw the same topology, profiles, and workload.
func directoryOff(c Config) Config {
	c.Protocol.DirectedCandidates = 0
	c.Protocol.MinDirectedOffers = 0
	c.Protocol.DirectoryCapacity = 0
	c.Protocol.DirectoryTTL = 0
	c.Protocol.DirectoryGossip = 0
	return c
}

func requestsPerJob(t *testing.T, res *metrics.Result) float64 {
	t.Helper()
	if res.Completed == 0 {
		t.Fatal("no completed jobs; msgs/job undefined")
	}
	return float64(res.Traffic[core.MsgRequest].Count) / float64(res.Completed)
}

// TestDirectedDiscoveryCutsRequestTraffic is the PR's acceptance gate: on the
// baseline workload, directed discovery must cut REQUEST transmissions per
// completed job by at least 40% against the identical flood-only run, at
// every seed, without losing completions or degrading mean completion time.
func TestDirectedDiscoveryCutsRequestTraffic(t *testing.T) {
	c := smallScenario(t, "iDirected")
	for _, seed := range []int{0, 1, 2} {
		directed, err := Run(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		flood, err := Run(directoryOff(c), seed)
		if err != nil {
			t.Fatal(err)
		}
		dirReq, floodReq := requestsPerJob(t, directed), requestsPerJob(t, flood)
		if dirReq > 0.6*floodReq {
			t.Errorf("seed %d: %.1f REQUEST msgs/job directed vs %.1f flood-only; want ≥40%% reduction",
				seed, dirReq, floodReq)
		}
		if directed.Completed < flood.Completed {
			t.Errorf("seed %d: directed completed %d < flood-only %d",
				seed, directed.Completed, flood.Completed)
		}
		// Placement quality: directed probes draw from the same cost
		// functions, so the schedule must not degrade. Allow 5% jitter —
		// a different candidate order legitimately reshuffles ties.
		if flood.AvgCompletion > 0 &&
			float64(directed.AvgCompletion) > 1.05*float64(flood.AvgCompletion) {
			t.Errorf("seed %d: directed mean completion %v vs flood-only %v; want no worse (5%% slack)",
				seed, directed.AvgCompletion, flood.AvgCompletion)
		}
		if !directed.Directory.Any() {
			t.Errorf("seed %d: directed run recorded no directory activity", seed)
		}
		if flood.Directory.Any() {
			t.Errorf("seed %d: flood-only run recorded directory activity: %+v", seed, flood.Directory)
		}
	}
}

// TestDirectedDirectoryCounters pins that the directory's work surfaces in
// the metrics result the report layer aggregates.
func TestDirectedDirectoryCounters(t *testing.T) {
	c := smallScenario(t, "iDirected")
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Directory.Hits == 0 {
		t.Error("no directed rounds despite a warm gossip plane")
	}
	if res.Directory.Probes < res.Directory.Hits {
		t.Errorf("probes %d < hits %d: every directed round sends at least one probe",
			res.Directory.Probes, res.Directory.Hits)
	}
	if res.MsgsPerJob[core.MsgRequest] <= 0 {
		t.Error("REQUEST msgs/job normalization missing from the result")
	}
}
