package scenario

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// traceSeeds are the distinct base seeds every scenario is audited under.
var traceSeeds = []int64{0, 7, 20100621} // 0 = the catalog default

// TestTraceInvariantsCatalog runs every scenario — the full Table II catalog
// plus the extension set (lossy links, partitions, churn, multi-assign) —
// with the trace plane armed and asserts the invariant checker finds nothing:
// flood budgets respected, exactly-one execution, no orphaned assignments,
// reschedules economically justified, retries bounded.
func TestTraceInvariantsCatalog(t *testing.T) {
	var all []Config
	all = append(all, Catalog()...)
	all = append(all, ExtensionScenarios()...)

	for _, base := range all {
		base := base
		for i, seed := range traceSeeds {
			if testing.Short() && i > 0 {
				continue
			}
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", base.Name, seed), func(t *testing.T) {
				t.Parallel()
				c := smallScenario(t, base.Name)
				if seed != 0 {
					c.Seed = seed
				}
				// The completeness invariants need the whole job tail to
				// drain; slow-INFORM variants can leave work in flight at
				// smallScenario's horizon. Idle simulated time is cheap.
				c.Horizon = c.Submission.End() + 72*time.Hour
				res, rep, err := RunTraced(c, 0)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Events == 0 {
					t.Fatal("trace plane armed but no span events collected")
				}
				if rep.Jobs < res.Submitted {
					t.Fatalf("trace covers %d jobs, %d were submitted", rep.Jobs, res.Submitted)
				}
				if !rep.OK() {
					for _, v := range rep.Violations {
						t.Errorf("%s", v)
					}
					t.Fatalf("%d invariant violation(s) in %s", len(rep.Violations), c.Name)
				}
			})
		}
	}
}

// TestTraceOptsRelaxations pins the mapping from scenario features to checker
// relaxations: clean runs are audited at full strictness, and each extension
// relaxes exactly the invariants it is designed to bend.
func TestTraceOptsRelaxations(t *testing.T) {
	strict := Baseline().TraceOpts()
	if strict.AllowDuplicateStarts || strict.AllowIncomplete || strict.AllowLoss {
		t.Fatalf("clean scenario relaxed the checker: %+v", strict)
	}
	byName := func(name string) Config {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	multi := byName("MultiReq3").TraceOpts()
	if !multi.AllowDuplicateStarts || multi.AllowIncomplete {
		t.Fatalf("MultiReq3 opts %+v", multi)
	}
	churn := byName("iChurn").TraceOpts()
	if !churn.AllowDuplicateStarts || !churn.AllowIncomplete || churn.AllowLoss {
		t.Fatalf("iChurn opts %+v", churn)
	}
	// iLossy runs with the AssignAck handshake, so assignments must still
	// have observable consequences even on a lossy network.
	lossy := byName("iLossy").TraceOpts()
	if lossy.AllowLoss {
		t.Fatalf("iLossy with AssignAck must not relax orphaned-assign: %+v", lossy)
	}
	unhardened := byName("iLossy")
	unhardened.Protocol.AssignAck = false
	if !unhardened.TraceOpts().AllowLoss {
		t.Fatal("lossy run without the handshake must relax orphaned-assign")
	}
}

// TestTracedRunMetricsUnchanged guards the trace plane's neutrality: arming
// it consumes no randomness and sends no extra messages, so a traced run
// reports metrics identical to the untraced run of the same repetition.
func TestTracedRunMetricsUnchanged(t *testing.T) {
	c := smallScenario(t, "iMixed")
	plain, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	traced, rep, err := RunTraced(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	// Spans are counted by the recorder in both runs (the counters are
	// observer-side, not protocol-side); everything else must match.
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing changed the run:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestTraceCollectorWiredOnDemand pins the opt-in: without Config.Trace the
// deployment carries no collector, with it the collector sees the run.
func TestTraceCollectorWiredOnDemand(t *testing.T) {
	c := smallScenario(t, "Mixed")
	d, err := Prepare(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trace != nil {
		t.Fatal("untraced deployment carries a collector")
	}

	c.Trace = true
	d, err = Prepare(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trace == nil {
		t.Fatal("traced deployment without a collector")
	}
	d.ScheduleSubmissions(ARiASubmit)
	res := d.Finish()
	if d.Trace.Len() == 0 {
		t.Fatal("no span events collected")
	}
	if got := res.SpanTotal(); got != d.Trace.Len() {
		t.Fatalf("recorder counted %d spans, collector retained %d", got, d.Trace.Len())
	}
	uuid := d.Trace.Events()[0].UUID
	if len(d.Trace.ByUUID(uuid)) == 0 {
		t.Fatal("ByUUID lost the job's events")
	}
}
