package scenario

import (
	"fmt"
	"testing"
	"time"
)

// benchReplay runs one synthetic SWF replay per iteration on the given
// engine (shards == 0 selects the legacy single-heap kernel) and reports
// kernel throughput in events per second. Flood fan-out makes event volume
// scale with nodes × jobs, so these are the end-to-end companions to the
// timer and cross-shard micro-benchmarks in internal/sim.
func benchReplay(b *testing.B, nodes, jobs, shards int) {
	b.Helper()
	var events uint64
	var completed int
	for i := 0; i < b.N; i++ {
		c, err := ByName("iMixed")
		if err != nil {
			b.Fatal(err)
		}
		c.Nodes = nodes
		c.Shards = shards
		// Submissions land in the trace's first hour and runtimes top out
		// at one hour; three hours drains the tail without idle spinning
		// (iMixed schedules no recurring per-node probes).
		c.Horizon = 3 * time.Hour
		d, err := Prepare(c, i)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReplaySWF(d, SyntheticTrace(jobs, 42)); err != nil {
			b.Fatal(err)
		}
		res := d.Finish()
		if res.Completed == 0 {
			b.Fatal("replay completed nothing")
		}
		events += d.Engine.Events()
		completed = res.Completed
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "ev/s")
	b.ReportMetric(float64(completed), "completed")
}

// BenchmarkReplayEndToEnd is the regression surface scripts/bench_check.sh
// watches: legacy vs sharded on the same replay, 2k and 10k nodes. Run with
// -benchtime=1x for the honest single-replay numbers BENCH_sim.json records
// (cmd/ariabench automates that, adding RSS accounting).
func BenchmarkReplayEndToEnd(b *testing.B) {
	cases := []struct {
		nodes, jobs, shards int
	}{
		{2000, 500, 0},
		{2000, 500, 4},
		{10000, 1000, 0},
		{10000, 1000, 4},
	}
	for _, tc := range cases {
		engine := "legacy"
		if tc.shards > 0 {
			engine = fmt.Sprintf("sharded%d", tc.shards)
		}
		b.Run(fmt.Sprintf("%s/n%d", engine, tc.nodes), func(b *testing.B) {
			benchReplay(b, tc.nodes, tc.jobs, tc.shards)
		})
	}
}
