package scenario

import (
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/sim"
)

// TestShardedRaceStress replays a synthetic SWF workload on the sharded
// kernel with worker goroutines engaged while the churn plane kills nodes
// mid-flight and restarts each one 5s later (the iCrashRestart family:
// SWIM probing armed, journal replay on reboot). It exists for the race
// detector: running it under `go test -race` exercises every cross-shard
// path — outbox staging, barrier merges, global-lane overlay surgery,
// pending-cap accounting, journal recovery — with real goroutine overlap.
// Functional assertions are deliberately weak; the detector is the oracle.
//
// The default sizing keeps -race wall time in seconds so the test can run
// in the ordinary suite. The CI sim-scale job sets ARIA_SIM_SCALE=full for
// the 10k-node version mandated by the scale-test plan.
func TestShardedRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress replay is not short")
	}
	nodes, jobs, kills := 200, 100, 30
	horizon := 2 * time.Hour
	if os.Getenv("ARIA_SIM_SCALE") == "full" {
		nodes, jobs, kills = 10000, 300, 200
		// At 10k nodes the probe plane alone emits ~1.4M events per
		// simulated hour and -race slows the kernel ~10x; cut the run
		// right after the churn window so CI wall time stays bounded.
		horizon = 90 * time.Minute
	}

	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	c, err := ByName("iCrashRestart")
	if err != nil {
		t.Fatal(err)
	}
	c.Nodes = nodes
	ch := *c.Churn
	ch.Kills = kills
	ch.Start = 10 * time.Minute
	ch.Interval = 15 * time.Second
	c.Churn = &ch
	c.Shards = 8
	// Submissions land in the trace's first hour; the horizon deliberately
	// truncates slow tails — this test judges data races, not completions,
	// and probe-plane event volume scales with nodes × horizon.
	c.Horizon = horizon

	d, err := Prepare(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Engine.(*sim.Sharded); !ok {
		t.Fatal("deployment did not use the sharded kernel")
	}
	scheduled, err := ReplaySWF(d, SyntheticTrace(jobs, 42))
	if err != nil {
		t.Fatal(err)
	}
	if scheduled != jobs {
		t.Fatalf("scheduled %d of %d trace jobs", scheduled, jobs)
	}
	res := d.Finish()
	if res.Submitted != jobs {
		t.Errorf("submitted %d, want %d", res.Submitted, jobs)
	}
	if res.Completed == 0 {
		t.Error("no jobs completed under churn stress")
	}
	t.Logf("nodes=%d jobs=%d kills=%d: completed=%d failed=%d",
		nodes, jobs, kills, res.Completed, res.Failed)
}
