package scenario

import (
	"fmt"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/workload"
)

// DefaultSeed anchors the deterministic evaluation; run k of a scenario
// derives its seed from this and the scenario name.
const DefaultSeed = 20100621 // ICDCS 2010 opening day

// base returns the baseline scenario skeleton shared by the whole catalog:
// the paper's Mixed setup (FCFS+SJF split) without dynamic rescheduling.
func base(name, desc string) Config {
	proto := core.DefaultConfig()
	proto.InformJobs = 0 // rescheduling off unless the scenario enables it
	return Config{
		Name:        name,
		Description: desc,
		Seed:        DefaultSeed,
		Nodes:       DefaultNodes,
		Overlay:     overlay.DefaultBlatantConfig(),
		Policies:    []sched.Policy{sched.FCFS, sched.SJF},
		Class:       job.ClassBatch,
		Submission: workload.Schedule{
			Start:    DefaultSubmitStart,
			Interval: DefaultSubmitInterval,
			Count:    DefaultJobs,
		},
		Protocol:          proto,
		ART:               job.DefaultARTModel(),
		Horizon:           DefaultHorizon,
		SampleInterval:    DefaultSampleInterval,
		EnsureSatisfiable: true,
	}
}

// rescheduled switches a scenario's dynamic rescheduling on with the
// paper's baseline parameters (2 INFORMs / 5 min, 3 min threshold).
func rescheduled(c Config, name string) Config {
	c.Name = name
	c.Description = "Like " + c.Description + " but with dynamic rescheduling."
	c.Protocol.InformJobs = core.DefaultConfig().InformJobs
	return c
}

// Catalog returns the paper's 26 evaluation scenarios (Table II), in the
// table's order.
func Catalog() []Config {
	fcfs := base("FCFS", "all nodes FCFS")
	fcfs.Policies = []sched.Policy{sched.FCFS}

	sjf := base("SJF", "all nodes SJF")
	sjf.Policies = []sched.Policy{sched.SJF}

	mixed := base("Mixed", "FCFS/SJF mixed one-to-one")

	deadline := base("Deadline", "all nodes EDF, relaxed deadlines")
	deadline.Policies = []sched.Policy{sched.EDF}
	deadline.Class = job.ClassDeadline
	deadline.DeadlineSlack = workload.DeadlineSlackRelaxed

	lowLoad := base("LowLoad", "Mixed at half submission rate")
	lowLoad.Submission.Interval = 20 * time.Second

	highLoad := base("HighLoad", "Mixed at double submission rate")
	highLoad.Submission.Interval = 5 * time.Second

	deadlineH := deadline
	deadlineH.Name = "DeadlineH"
	deadlineH.Description = "EDF with tight deadlines"
	deadlineH.DeadlineSlack = workload.DeadlineSlackTight

	expanding := base("Expanding", "Mixed on a growing overlay (500→700 nodes)")
	expanding.Expanding = &Expanding{
		ExtraNodes: 200,
		Start:      time.Hour + 23*time.Minute,
		Interval:   50 * time.Second,
	}

	precise := base("Precise", "Mixed with exact running-time estimates")
	precise.ART = job.ARTModel{Mode: job.DriftNone}

	accuracy25 := base("Accuracy25", "Mixed with ±25% estimate error")
	accuracy25.ART = job.ARTModel{Mode: job.DriftSymmetric, Epsilon: 0.25}

	accuracyBad := base("AccuracyBad", "Mixed with always-optimistic estimates")
	accuracyBad.ART = job.ARTModel{Mode: job.DriftOptimistic, Epsilon: 0.1}

	iMixed := rescheduled(mixed, "iMixed")

	iInform1 := rescheduled(mixed, "iInform1")
	iInform1.Description = "iMixed advertising only 1 job per interval"
	iInform1.Protocol.InformJobs = 1

	iInform4 := rescheduled(mixed, "iInform4")
	iInform4.Description = "iMixed advertising up to 4 jobs per interval"
	iInform4.Protocol.InformJobs = 4

	iInform15m := rescheduled(mixed, "iInform15m")
	iInform15m.Description = "iMixed requiring a 15m improvement to reschedule"
	iInform15m.Protocol.RescheduleThreshold = 15 * time.Minute

	iInform30m := rescheduled(mixed, "iInform30m")
	iInform30m.Description = "iMixed requiring a 30m improvement to reschedule"
	iInform30m.Protocol.RescheduleThreshold = 30 * time.Minute

	return []Config{
		fcfs,
		sjf,
		mixed,
		deadline,
		lowLoad,
		highLoad,
		deadlineH,
		expanding,
		precise,
		accuracy25,
		accuracyBad,
		rescheduled(fcfs, "iFCFS"),
		rescheduled(sjf, "iSJF"),
		iMixed,
		rescheduled(deadline, "iDeadline"),
		rescheduled(lowLoad, "iLowLoad"),
		rescheduled(highLoad, "iHighLoad"),
		rescheduled(deadlineH, "iDeadlineH"),
		rescheduled(expanding, "iExpanding"),
		iInform1,
		iInform4,
		iInform15m,
		iInform30m,
		rescheduled(precise, "iPrecise"),
		rescheduled(accuracy25, "iAccuracy25"),
		rescheduled(accuracyBad, "iAccuracyBad"),
	}
}

// ExtensionScenarios returns configurations beyond Table II that implement
// the paper's future-work list: alternate peer-to-peer overlay topologies
// and additional local scheduling policies.
func ExtensionScenarios() []Config {
	var out []Config
	for _, topo := range []overlay.Topology{
		overlay.TopologyRandom, overlay.TopologyRing,
		overlay.TopologySmallWorld, overlay.TopologyScaleFree,
	} {
		c := Baseline()
		c.Name = "iMixed-" + topo.String()
		c.Description = "iMixed on a " + topo.String() + " overlay (future work §VI)"
		c.Topology = topo
		out = append(out, c)
	}

	prio := Baseline()
	prio.Name = "iPolicies4"
	prio.Description = "four batch policies mixed: FCFS, SJF, Priority, LJF (future work §VI)"
	prio.Policies = []sched.Policy{sched.FCFS, sched.SJF, sched.Priority, sched.LJF}
	out = append(out, prio)

	failsafe := Baseline()
	failsafe.Name = "iFailsafe"
	failsafe.Description = "iMixed with the NOTIFY tracking extension armed (§III-D)"
	failsafe.Protocol.NotifyInitiator = true
	out = append(out, failsafe)

	churn := Baseline()
	churn.Name = "iChurn"
	churn.Description = "iMixed with 50 random node crashes and no failsafe (volatility probe)"
	churn.Churn = &Churn{Kills: 50, Start: 30 * time.Minute, Interval: 2 * time.Minute}
	out = append(out, churn)

	churnSafe := churn
	churnSafe.Name = "iChurnFailsafe"
	churnSafe.Description = "iChurn with the NOTIFY failsafe recovering lost jobs"
	churnSafe.Protocol.NotifyInitiator = true
	out = append(out, churnSafe)

	multireq := Baseline()
	multireq.Name = "MultiReq3"
	multireq.Description = "multiple-simultaneous-requests model of [13]: assign to the 3 best offers, revoke on first start (related-work comparison)"
	multireq.Protocol.InformJobs = 0
	multireq.Protocol.MultiAssign = 3
	out = append(out, multireq)

	selNewest := Baseline()
	selNewest.Name = "iSelectNewest"
	selNewest.Description = "iMixed advertising the newest queued jobs instead of the longest-waiting (§III-D ablation)"
	selNewest.Protocol.InformSelection = sched.SelectNewest
	out = append(out, selNewest)

	selCostliest := Baseline()
	selCostliest.Name = "iSelectCostliest"
	selCostliest.Description = "iMixed advertising the costliest queued jobs (§III-D ablation)"
	selCostliest.Protocol.InformSelection = sched.SelectCostliest
	out = append(out, selCostliest)

	sites := Baseline()
	sites.Name = "iMixed-sites10"
	sites.Description = "iMixed on a 10-site grid-of-clusters latency model (LAN within, WAN across)"
	sites.Sites = 10
	out = append(out, sites)

	lossy := Baseline()
	lossy.Name = "iLossy"
	lossy.Description = "iMixed on a lossy network (5% drop, 1% duplication, 2s jitter) with the ASSIGN handshake and failsafe armed"
	lossy.Faults = &Faults{DropProb: 0.05, DupProb: 0.01, MaxExtraDelay: 2 * time.Second}
	lossy.Protocol.AssignAck = true
	lossy.Protocol.NotifyInitiator = true
	// The ACCEPT collect window must cover the worst-case jitter on the
	// REQUEST flood plus the direct reply, or far offers arrive after the
	// decision and demanding jobs starve (see OPERATIONS.md).
	lossy.Protocol.AcceptTimeout += 2 * 2 * time.Second
	out = append(out, lossy)

	partition := Baseline()
	partition.Name = "iPartition"
	partition.Description = "iMixed with a quarter of the overlay cut off for 30m mid-run, hardening armed"
	partition.Faults = &Faults{
		Partition: &FaultPartition{Start: 2 * time.Hour, Duration: 30 * time.Minute, Fraction: 0.25},
	}
	partition.Protocol.AssignAck = true
	partition.Protocol.NotifyInitiator = true
	out = append(out, partition)

	gray := Baseline()
	gray.Name = "iGray"
	gray.Description = "iMixed under gray failures: a one-way (deaf) partition, a slow-peer window, and a SIGSTOP-style stall window overlapping mid-run, hardening armed"
	gray.Faults = &Faults{
		Partition: &FaultPartition{Start: 90 * time.Minute, Duration: 20 * time.Minute, Fraction: 0.1, OneWay: true},
		Slowdown:  &FaultSlowdown{Start: 2 * time.Hour, Duration: 30 * time.Minute, Fraction: 0.15, ExtraDelay: 3 * time.Second},
		Stall:     &FaultStall{Start: 3 * time.Hour, Duration: 2 * time.Minute, Fraction: 0.05},
	}
	gray.Protocol.AssignAck = true
	gray.Protocol.NotifyInitiator = true
	// Slow-peer windows stretch offer round-trips; widen the collect window
	// like iLossy does so demanding jobs don't starve during the slowdown.
	gray.Protocol.AcceptTimeout += 2 * 3 * time.Second
	out = append(out, gray)

	lossyChurn := lossy
	lossyChurn.Name = "iLossyChurn"
	lossyChurn.Description = "iLossy plus 50 random node crashes: message loss and volatility combined"
	lossyChurn.Churn = &Churn{Kills: 50, Start: 30 * time.Minute, Interval: 2 * time.Minute}
	out = append(out, lossyChurn)

	churnHeal := Baseline()
	churnHeal.Name = "iChurnHeal"
	churnHeal.Description = "iMixed with 50 crashes left as corpses in the overlay: the membership plane (SWIM-style probing) must detect them, prune dead links, and repair the topology"
	churnHeal.Churn = &Churn{
		Kills: 50, Start: 30 * time.Minute, Interval: 2 * time.Minute,
		LeaveCorpses: true,
	}
	churnHeal.Protocol.NotifyInitiator = true
	churnHeal.Protocol.ProbeInterval = core.DefaultProbeInterval
	churnHeal.Protocol.ProbeTimeout = core.DefaultProbeTimeout
	churnHeal.Protocol.SuspectTimeout = core.DefaultSuspectTimeout
	churnHeal.Protocol.MaxDegree = 8
	churnHeal.Protocol.ReFloodTTLStep = 2
	out = append(out, churnHeal)

	lossyChurnHeal := lossyChurn
	lossyChurnHeal.Name = "iLossyChurnHeal"
	lossyChurnHeal.Description = "iLossyChurn with corpses left in place and the membership plane armed: loss, volatility, and self-healing combined"
	lossyChurnHeal.Churn = &Churn{
		Kills: 50, Start: 30 * time.Minute, Interval: 2 * time.Minute,
		LeaveCorpses: true,
	}
	lossyChurnHeal.Protocol.ProbeInterval = core.DefaultProbeInterval
	lossyChurnHeal.Protocol.ProbeTimeout = core.DefaultProbeTimeout
	lossyChurnHeal.Protocol.SuspectTimeout = core.DefaultSuspectTimeout
	lossyChurnHeal.Protocol.MaxDegree = 8
	lossyChurnHeal.Protocol.ReFloodTTLStep = 2
	out = append(out, lossyChurnHeal)

	// Crash–restart family: churned nodes come back after a short reboot
	// delay. The restart delay is kept well under the SWIM suspect window
	// (probe interval + probe timeout + suspect timeout) so the revenant
	// refutes its own suspicion instead of being declared dead.
	crashRestart := Baseline()
	crashRestart.Name = "iCrashRestart"
	crashRestart.Description = "iChurnHeal where every crashed node reboots after 5s and replays its write-ahead journal (fail-recover)"
	crashRestart.Churn = &Churn{
		Kills: 50, Start: 30 * time.Minute, Interval: 2 * time.Minute,
		LeaveCorpses: true,
		Restart:      5 * time.Second,
	}
	crashRestart.Protocol.NotifyInitiator = true
	crashRestart.Protocol.ProbeInterval = core.DefaultProbeInterval
	crashRestart.Protocol.ProbeTimeout = core.DefaultProbeTimeout
	crashRestart.Protocol.SuspectTimeout = core.DefaultSuspectTimeout
	crashRestart.Protocol.MaxDegree = 8
	crashRestart.Protocol.ReFloodTTLStep = 2
	crashRestart.Journal = true
	out = append(out, crashRestart)

	amnesiac := crashRestart
	amnesiac.Name = "iCrashRestart-amnesiac"
	amnesiac.Description = "iCrashRestart without the journal: restarted nodes come back empty (fail-stop control for report extension G)"
	amnesiac.Journal = false
	out = append(out, amnesiac)

	lossyCrashRestart := lossyChurnHeal
	lossyCrashRestart.Name = "iLossyCrashRestart"
	lossyCrashRestart.Description = "iLossyChurnHeal with 5s journaled restarts: loss, volatility, self-healing, and crash recovery combined"
	lossyCrashRestart.Churn = &Churn{
		Kills: 50, Start: 30 * time.Minute, Interval: 2 * time.Minute,
		LeaveCorpses: true,
		Restart:      5 * time.Second,
	}
	lossyCrashRestart.Journal = true
	out = append(out, lossyCrashRestart)

	// Directed-discovery family: the gossip-fed resource directory steers
	// first discovery rounds at cached candidates, flooding only as
	// fallback. The membership plane is a prerequisite (digests ride
	// PING/PONG gossip, and suspicion/death feed cache invalidation).
	directed := Baseline()
	directed.Name = "iDirected"
	directed.Description = "iMixed with the gossip-fed resource directory: first discovery rounds probe up to 3 cached candidates with TTL-0 REQUESTs, flooding only on miss or starvation"
	directed.Protocol.ProbeInterval = core.DefaultProbeInterval
	directed.Protocol.ProbeTimeout = core.DefaultProbeTimeout
	directed.Protocol.SuspectTimeout = core.DefaultSuspectTimeout
	directed.Protocol.DirectedCandidates = core.DefaultDirectedCandidates
	directed.Protocol.MinDirectedOffers = core.DefaultMinDirectedOffers
	directed.Protocol.DirectoryCapacity = core.DefaultDirectoryCapacity
	directed.Protocol.DirectoryTTL = core.DefaultDirectoryTTL
	directed.Protocol.DirectoryGossip = core.DefaultDirectoryGossip
	out = append(out, directed)

	directedChurn := churnHeal
	directedChurn.Name = "iDirectedChurn"
	directedChurn.Description = "iChurnHeal with the directory armed: suspicion evicts, dead verdicts tombstone, and no directed probe may ever target a corpse"
	directedChurn.Protocol.DirectedCandidates = core.DefaultDirectedCandidates
	directedChurn.Protocol.MinDirectedOffers = core.DefaultMinDirectedOffers
	directedChurn.Protocol.DirectoryCapacity = core.DefaultDirectoryCapacity
	directedChurn.Protocol.DirectoryTTL = core.DefaultDirectoryTTL
	directedChurn.Protocol.DirectoryGossip = core.DefaultDirectoryGossip
	out = append(out, directedChurn)

	// Shared-state family: the optimistic-commit arm (Omega-style) replaces
	// per-job discovery with a single COMMIT against the initiator's
	// eventually-consistent cached cluster view. Providers validate commits
	// against reality and answer with typed CONFLICTs carrying their honest
	// digest; initiators retry the next-best candidate with bounded backoff
	// and escalate to the classic flood only after the commit budget is
	// exhausted. The membership plane and the directory store feed the view
	// (DirectedCandidates itself stays off: commits, not probes).
	sharedState := Baseline()
	sharedState.Name = "iSharedState"
	sharedState.Description = "iMixed on the shared-state optimistic arm: initiators commit jobs against their gossip-fed cluster view, providers grant or reply with typed CONFLICTs, and the flood fires only after the commit budget is exhausted"
	sharedState.Protocol.ProbeInterval = core.DefaultProbeInterval
	sharedState.Protocol.ProbeTimeout = core.DefaultProbeTimeout
	sharedState.Protocol.SuspectTimeout = core.DefaultSuspectTimeout
	sharedState.Protocol.DirectoryCapacity = core.DefaultDirectoryCapacity
	sharedState.Protocol.DirectoryTTL = core.DefaultDirectoryTTL
	sharedState.Protocol.DirectoryGossip = core.DefaultDirectoryGossip
	sharedState.Protocol.SharedStateBound = core.DefaultSharedStateBound
	sharedState.Protocol.SharedStateRetries = core.DefaultSharedStateRetries
	sharedState.Protocol.CommitTimeout = core.DefaultCommitTimeout
	sharedState.Protocol.CommitBackoff = core.DefaultCommitBackoff
	out = append(out, sharedState)

	sharedStateChurn := churnHeal
	sharedStateChurn.Name = "iSharedStateChurn"
	sharedStateChurn.Description = "iChurnHeal on the shared-state arm: stale view entries draw CONFLICT(stale), silent corpses burn commit timeouts, and the flood fallback keeps completion independent of view quality"
	sharedStateChurn.Protocol.DirectoryCapacity = core.DefaultDirectoryCapacity
	sharedStateChurn.Protocol.DirectoryTTL = core.DefaultDirectoryTTL
	sharedStateChurn.Protocol.DirectoryGossip = core.DefaultDirectoryGossip
	sharedStateChurn.Protocol.SharedStateBound = core.DefaultSharedStateBound
	sharedStateChurn.Protocol.SharedStateRetries = core.DefaultSharedStateRetries
	sharedStateChurn.Protocol.CommitTimeout = core.DefaultCommitTimeout
	sharedStateChurn.Protocol.CommitBackoff = core.DefaultCommitBackoff
	out = append(out, sharedStateChurn)

	// Overload family: the grid is driven past steady-state capacity
	// (double submission rate, as HighLoad) with the overload-control
	// plane armed: saturated providers answer REQUESTs with advisory BUSY
	// and shed late-arriving ASSIGNs for re-dispatch, initiators bound
	// their concurrent discoveries, and starved re-floods back off on a
	// jittered capped schedule instead of a synchronized fixed cadence.
	// The retry budget is raised so patient initiators outlast the backlog
	// drain rather than failing jobs a bounded queue merely postponed.
	overload := Baseline()
	overload.Name = "iOverload"
	overload.Description = "iMixed at double submission rate with the overload-control plane armed: bounded run queues, BUSY shedding with guaranteed re-dispatch, submit admission control, and jittered capped retry backoff"
	overload.Submission.Interval = 5 * time.Second
	overload.Protocol.MaxQueuedJobs = core.DefaultMaxQueuedJobs
	overload.Protocol.MaxPendingSubmits = core.DefaultMaxPendingSubmits
	overload.Protocol.RetryBackoffCap = core.DefaultRetryBackoffCap
	overload.Protocol.MaxRequestRetries = 64
	out = append(out, overload)

	overloadChurn := overload
	overloadChurn.Name = "iOverloadChurn"
	overloadChurn.Description = "iOverload plus 50 random node crashes: saturation and volatility combined — the queue bound caps how much work any one crash takes down"
	overloadChurn.Churn = &Churn{Kills: 50, Start: 30 * time.Minute, Interval: 2 * time.Minute}
	out = append(out, overloadChurn)

	reservations := Baseline()
	reservations.Name = "iReservations"
	reservations.Description = "iMixed with 25% of jobs holding 2h advance reservations (future work §VI)"
	reservations.ReservationFraction = 0.25
	reservations.ReservationLead = 2 * time.Hour
	out = append(out, reservations)

	return out
}

// ByName finds a scenario in the Table II catalog or the extension set.
func ByName(name string) (Config, error) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	for _, c := range ExtensionScenarios() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("unknown scenario %q", name)
}

// Names lists the catalog scenario names in table order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, c := range cat {
		out[i] = c.Name
	}
	return out
}

// Baseline returns the iMixed scenario, the paper's reference point.
func Baseline() Config {
	c, err := ByName("iMixed")
	if err != nil {
		// Unreachable: iMixed is always in the catalog.
		panic(err)
	}
	return c
}

// SortedNames lists the catalog names alphabetically (for CLI help).
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
