package scenario

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/metrics"
)

// sharedStateOff strips the optimistic-commit arm and its view feed from a
// config, leaving everything else (membership, churn, workload) identical —
// the flood-only control arm. The name is deliberately kept: runSeed hashes
// it, and the two arms must draw the same topology, profiles, and workload.
func sharedStateOff(c Config) Config {
	c.Protocol.SharedStateBound = 0
	c.Protocol.SharedStateRetries = 0
	c.Protocol.CommitTimeout = 0
	c.Protocol.CommitBackoff = 0
	c.Protocol.DirectoryCapacity = 0
	c.Protocol.DirectoryTTL = 0
	c.Protocol.DirectoryGossip = 0
	return c
}

// discoveryPerJob is the discovery traffic a completed job cost: REQUEST
// floods plus the commit arm's COMMIT/CONFLICT unicasts. The flood-only arm
// pays only the first term, so the comparison charges the optimistic arm
// for its whole conversation.
func discoveryPerJob(t *testing.T, res *metrics.Result) float64 {
	t.Helper()
	if res.Completed == 0 {
		t.Fatal("no completed jobs; msgs/job undefined")
	}
	msgs := res.Traffic[core.MsgRequest].Count +
		res.Traffic[core.MsgCommit].Count +
		res.Traffic[core.MsgConflict].Count
	return float64(msgs) / float64(res.Completed)
}

// TestSharedStateCutsDiscoveryTraffic is the PR's acceptance gate, low-
// contention half: with queues below the commit bound, the optimistic arm
// must place most jobs with a handful of unicasts, cutting discovery
// messages per completed job by at least 60% against the identical
// flood-only run, at every seed, without losing completions or degrading
// mean completion time.
func TestSharedStateCutsDiscoveryTraffic(t *testing.T) {
	c := smallScenario(t, "iSharedState")
	c.Submission.Interval = 10 * time.Second // low contention
	c.Horizon = c.Submission.End() + 30*time.Hour
	for _, seed := range []int{0, 1, 2} {
		ss, err := Run(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := Run(sharedStateOff(c), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ss.SharedState.Any() {
			t.Fatalf("seed %d: shared-state arm recorded no commit activity", seed)
		}
		if fl.SharedState.Any() {
			t.Fatalf("seed %d: flood-only arm recorded commit activity: %+v", seed, fl.SharedState)
		}
		if ss.SharedState.Granted == 0 {
			t.Errorf("seed %d: no commit was ever granted", seed)
		}
		ssMsgs, flMsgs := discoveryPerJob(t, ss), discoveryPerJob(t, fl)
		if ssMsgs > 0.4*flMsgs {
			t.Errorf("seed %d: %.1f discovery msgs/job shared-state vs %.1f flood-only; want ≥60%% reduction",
				seed, ssMsgs, flMsgs)
		}
		if ss.Completed < fl.Completed {
			t.Errorf("seed %d: shared-state completed %d < flood-only %d", seed, ss.Completed, fl.Completed)
		}
		// Placement quality: the view ranks by the same cost signals the
		// flood's offers carry, so the schedule must not degrade. Allow 10%
		// jitter — a cached pick legitimately reshuffles near-ties.
		if fl.AvgCompletion > 0 &&
			float64(ss.AvgCompletion) > 1.10*float64(fl.AvgCompletion) {
			t.Errorf("seed %d: shared-state mean completion %v vs flood-only %v; want no worse (10%% slack)",
				seed, ss.AvgCompletion, fl.AvgCompletion)
		}
	}
}

// TestSharedStateHighContentionBounded is the high-contention half of the
// acceptance gate: driven at double rate, optimistic commits collide — but
// the conflict rate must stay bounded (typed CONFLICTs repair the view, so
// conflicts do not snowball), no job may be lost, and mean completion time
// must not fall off a cliff against the identical flood-only run.
func TestSharedStateHighContentionBounded(t *testing.T) {
	c := smallScenario(t, "iSharedState")
	c.Submission.Interval = 2 * time.Second // double the default pressure
	c.Horizon = c.Submission.End() + 72*time.Hour
	for _, seed := range []int{0, 1, 2} {
		ss, err := Run(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := Run(sharedStateOff(c), seed)
		if err != nil {
			t.Fatal(err)
		}
		if ss.Completed != ss.Submitted {
			t.Errorf("seed %d: completed %d of %d under contention", seed, ss.Completed, ss.Submitted)
		}
		if rate := ss.SharedState.ConflictRate(); rate > 0.75 {
			t.Errorf("seed %d: conflict rate %.2f; want bounded ≤ 0.75", seed, rate)
		}
		if fl.AvgCompletion > 0 &&
			float64(ss.AvgCompletion) > 1.25*float64(fl.AvgCompletion) {
			t.Errorf("seed %d: completion-time cliff under contention: shared-state %v vs flood-only %v",
				seed, ss.AvgCompletion, fl.AvgCompletion)
		}
	}
}

// TestSharedStateCounters pins that the commit arm's work surfaces in the
// metrics result the report layer aggregates, and that the accounting is
// internally consistent: every commit resolves as a grant, a conflict that
// led to a retry or fallback, or an in-flight residue at the horizon.
func TestSharedStateCounters(t *testing.T) {
	c := smallScenario(t, "iSharedState")
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := res.SharedState
	if sc.Commits == 0 {
		t.Fatal("no commits despite a warm gossip plane")
	}
	if sc.Granted == 0 {
		t.Fatal("no commit ever granted")
	}
	if sc.GrantAttempts < sc.Granted {
		t.Errorf("grant attempts %d < grants %d: each grant costs at least one commit", sc.GrantAttempts, sc.Granted)
	}
	if sc.Commits < sc.Granted+sc.ConflictTotal() {
		t.Errorf("commits %d < grants %d + conflicts %d: resolutions outnumber attempts",
			sc.Commits, sc.Granted, sc.ConflictTotal())
	}
	if res.MsgsPerJob[core.MsgCommit] <= 0 {
		t.Error("COMMIT msgs/job normalization missing from the result")
	}
}
