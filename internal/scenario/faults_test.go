package scenario

import (
	"reflect"
	"testing"
	"time"
)

// hardenedOff strips the delivery hardening from a fault scenario, leaving
// the fault plane in place: the ablation showing the handshake is load-
// bearing, not decorative.
func hardenedOff(c Config) Config {
	c.Protocol.AssignAck = false
	c.Protocol.NotifyInitiator = false
	return c
}

func TestRunILossyHardenedCompletes(t *testing.T) {
	c := smallScenario(t, "iLossy")
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Dropped == 0 || res.Faults.Duplicated == 0 {
		t.Fatalf("fault plane inert: %+v", res.Faults)
	}
	if res.Faults.Retried == 0 {
		t.Fatal("no ASSIGN retransmissions despite message loss")
	}
	if got := float64(res.Completed) / float64(res.Submitted); got < 0.99 {
		t.Fatalf("hardened lossy run completed %.3f (%d/%d), want >= 0.99",
			got, res.Completed, res.Submitted)
	}
}

func TestRunILossyUnhardenedLosesJobs(t *testing.T) {
	c := hardenedOff(smallScenario(t, "iLossy"))
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Retried != 0 {
		t.Fatal("retransmissions recorded with the handshake off")
	}
	if res.Completed >= res.Submitted {
		t.Fatalf("unhardened lossy run lost nothing (%d/%d): the hardening is not load-bearing",
			res.Completed, res.Submitted)
	}
}

func TestRunIPartitionSmall(t *testing.T) {
	c := smallScenario(t, "iPartition")
	// The catalog's 2h window sits after the scaled submission burst
	// (ending ~25m) but well inside the multi-hour job tail, so the cut
	// severs NOTIFY/INFORM/reschedule traffic without starving discovery:
	// a partitioned initiator would exhaust its REQUEST retries (~5 min)
	// inside the 30m window and fail the job permanently.
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.PartitionDropped == 0 {
		t.Fatal("partition window cut no traffic")
	}
	if got := float64(res.Completed) / float64(res.Submitted); got < 0.95 {
		t.Fatalf("partition run completed %.3f (%d/%d), want >= 0.95",
			got, res.Completed, res.Submitted)
	}
}

func TestRunILossyChurnSmall(t *testing.T) {
	c := smallScenario(t, "iLossyChurn")
	c.Churn.Start = c.Submission.Start
	c.Churn.Interval = 90 * time.Second
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Dropped == 0 {
		t.Fatal("fault plane inert under churn")
	}
	if got := float64(res.Completed) / float64(res.Submitted); got < 0.95 {
		t.Fatalf("lossy churn run completed %.3f (%d/%d), want >= 0.95",
			got, res.Completed, res.Submitted)
	}
}

func TestRunILossyChurnUnhardenedLosesJobs(t *testing.T) {
	c := hardenedOff(smallScenario(t, "iLossyChurn"))
	c.Churn.Start = c.Submission.Start
	c.Churn.Interval = 90 * time.Second
	res, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed >= res.Submitted {
		t.Fatalf("unhardened lossy churn run lost nothing (%d/%d)",
			res.Completed, res.Submitted)
	}
}

// TestRunILossyDeterministic is the determinism guard: the fault plane must
// draw only from its seeded source, so two same-seed lossy runs produce
// byte-identical metrics.
func TestRunILossyDeterministic(t *testing.T) {
	c := smallScenario(t, "iLossy")
	a, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical lossy runs diverged:\n%+v\n%+v", a, b)
	}
}
