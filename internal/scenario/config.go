// Package scenario defines the paper's 26 evaluation scenarios (Table II)
// and the runner that executes them on the discrete-event simulator.
package scenario

import (
	"fmt"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/workload"
)

// Evaluation constants from §IV.
const (
	// DefaultNodes is the baseline overlay size.
	DefaultNodes = 500

	// DefaultJobs is the number of submitted jobs in every scenario.
	DefaultJobs = 1000

	// DefaultHorizon is the simulated grid activity span (41h40m).
	DefaultHorizon = 41*time.Hour + 40*time.Minute

	// DefaultSubmitStart is when submissions begin.
	DefaultSubmitStart = 20 * time.Minute

	// DefaultSubmitInterval is the baseline submission rate (1 per 10 s).
	DefaultSubmitInterval = 10 * time.Second

	// DefaultSampleInterval is the cadence of idle-node sampling and the
	// bin width of the completed-jobs series.
	DefaultSampleInterval = 5 * time.Minute
)

// Expanding describes dynamic overlay growth (the Expanding scenarios:
// 200 extra nodes, one every 50 s, starting at 1h23m).
type Expanding struct {
	ExtraNodes int
	Start      time.Duration
	Interval   time.Duration
}

// Validate reports the first structural problem.
func (e Expanding) Validate() error {
	switch {
	case e.ExtraNodes < 1:
		return fmt.Errorf("extra nodes %d must be positive", e.ExtraNodes)
	case e.Start < 0:
		return fmt.Errorf("expansion start %v must be non-negative", e.Start)
	case e.Interval <= 0:
		return fmt.Errorf("expansion interval %v must be positive", e.Interval)
	}
	return nil
}

// Churn describes node-failure injection: Kills random nodes crash, one
// every Interval starting at Start. Killed nodes lose their queued and
// running work; with the NOTIFY failsafe armed (Protocol.NotifyInitiator)
// initiators re-submit the lost jobs. This extension probes the paper's
// motivation of "highly volatile" resources (§I).
type Churn struct {
	Kills    int
	Start    time.Duration
	Interval time.Duration

	// LeaveCorpses keeps killed nodes in the overlay graph instead of
	// excising them, and suppresses the swarm manager's heal round. The
	// survivors must then detect the corpse and repair the overlay
	// themselves via the protocol's membership plane (Protocol.ProbeInterval
	// et al.) — this is the setting the liveness scenarios exercise.
	LeaveCorpses bool

	// Restart, when positive, brings every killed node back after this
	// delay as a fresh process on the same overlay address (fail-recover).
	// With Config.Journal on, the replacement replays its write-ahead
	// journal; off, it restarts amnesiac — the comparison report extension
	// G draws. Keep the delay shorter than the membership suspect window
	// (probe interval + timeout + suspect timeout) so the revenant refutes
	// its peers' suspicion before the terminal dead verdict lands.
	Restart time.Duration
}

// Validate reports the first structural problem.
func (c Churn) Validate() error {
	switch {
	case c.Kills < 1:
		return fmt.Errorf("churn kills %d must be positive", c.Kills)
	case c.Start < 0:
		return fmt.Errorf("churn start %v must be non-negative", c.Start)
	case c.Interval <= 0:
		return fmt.Errorf("churn interval %v must be positive", c.Interval)
	case c.Restart < 0:
		return fmt.Errorf("churn restart delay %v must be non-negative", c.Restart)
	}
	return nil
}

// FaultPartition describes one timed network split: a random Fraction of
// nodes is cut off from the rest for Duration starting at Start. Messages
// across the cut are lost; traffic within each side still flows. With
// OneWay set the split is asymmetric: only traffic INTO the isolated set
// is lost — the isolated nodes keep transmitting but go deaf, the gray
// failure that symmetric cuts cannot express.
type FaultPartition struct {
	Start    time.Duration
	Duration time.Duration
	Fraction float64
	OneWay   bool
}

// Validate reports the first structural problem.
func (p FaultPartition) Validate() error {
	switch {
	case p.Start < 0:
		return fmt.Errorf("partition start %v must be non-negative", p.Start)
	case p.Duration <= 0:
		return fmt.Errorf("partition duration %v must be positive", p.Duration)
	case p.Fraction <= 0 || p.Fraction >= 1:
		return fmt.Errorf("partition fraction %v outside (0, 1)", p.Fraction)
	}
	return nil
}

// Faults parameterizes the link fault plane (robustness extension): every
// unicast transmission may be dropped, duplicated, or delayed, and a timed
// partition may sever part of the overlay. All draws come from a seeded
// per-run source, so faulty runs stay bit-reproducible.
type Faults struct {
	// DropProb is the per-transmission loss probability in [0, 1).
	DropProb float64

	// DupProb is the per-transmission duplication probability in [0, 1).
	DupProb float64

	// MaxExtraDelay adds a uniform random extra delay in [0, MaxExtraDelay)
	// to each delivered copy; zero disables jitter.
	MaxExtraDelay time.Duration

	// Partition, when non-nil, cuts a node fraction off for a window.
	Partition *FaultPartition

	// Slowdown, when non-nil, degrades a node fraction's links for a
	// window: every transmission touching a slowed node gains ExtraDelay
	// without ever disconnecting — the slow-peer gray failure.
	Slowdown *FaultSlowdown

	// Stall, when non-nil, freezes a node fraction's inbound delivery
	// for a window: messages toward a stalled node are held until the
	// window closes, the SIGSTOP/SIGCONT analogue.
	Stall *FaultStall
}

// FaultSlowdown describes one timed slow-peer window over a random
// Fraction of nodes.
type FaultSlowdown struct {
	Start      time.Duration
	Duration   time.Duration
	Fraction   float64
	ExtraDelay time.Duration
}

// Validate reports the first structural problem.
func (s FaultSlowdown) Validate() error {
	switch {
	case s.Start < 0:
		return fmt.Errorf("slowdown start %v must be non-negative", s.Start)
	case s.Duration <= 0:
		return fmt.Errorf("slowdown duration %v must be positive", s.Duration)
	case s.Fraction <= 0 || s.Fraction >= 1:
		return fmt.Errorf("slowdown fraction %v outside (0, 1)", s.Fraction)
	case s.ExtraDelay <= 0:
		return fmt.Errorf("slowdown extra delay %v must be positive", s.ExtraDelay)
	}
	return nil
}

// FaultStall describes one timed inbound-delivery freeze over a random
// Fraction of nodes.
type FaultStall struct {
	Start    time.Duration
	Duration time.Duration
	Fraction float64
}

// Validate reports the first structural problem.
func (s FaultStall) Validate() error {
	switch {
	case s.Start < 0:
		return fmt.Errorf("stall start %v must be non-negative", s.Start)
	case s.Duration <= 0:
		return fmt.Errorf("stall duration %v must be positive", s.Duration)
	case s.Fraction <= 0 || s.Fraction >= 1:
		return fmt.Errorf("stall fraction %v outside (0, 1)", s.Fraction)
	}
	return nil
}

// Validate reports the first structural problem.
func (f Faults) Validate() error {
	switch {
	case f.DropProb < 0 || f.DropProb >= 1:
		return fmt.Errorf("drop probability %v outside [0, 1)", f.DropProb)
	case f.DupProb < 0 || f.DupProb >= 1:
		return fmt.Errorf("duplication probability %v outside [0, 1)", f.DupProb)
	case f.MaxExtraDelay < 0:
		return fmt.Errorf("max extra delay %v must be non-negative", f.MaxExtraDelay)
	}
	if f.Partition != nil {
		if err := f.Partition.Validate(); err != nil {
			return err
		}
	}
	if f.Slowdown != nil {
		if err := f.Slowdown.Validate(); err != nil {
			return err
		}
	}
	if f.Stall != nil {
		return f.Stall.Validate()
	}
	return nil
}

// Config fully describes one evaluation scenario.
type Config struct {
	// Name matches Table II; Description summarizes the variation.
	Name        string
	Description string

	// Seed is the base random seed; run k uses a seed derived from it.
	Seed int64

	// Nodes is the initial overlay size.
	Nodes int

	// Overlay parameterizes the BLATANT-S topology manager.
	Overlay overlay.BlatantConfig

	// Topology selects the overlay family (zero value = the paper's
	// BLATANT-S-managed overlay). The paper's future work calls for
	// experiments with other peer-to-peer overlay types; ring, random,
	// small-world, and scale-free generators are available. Expanding
	// scenarios require the BLATANT topology (only it supports joins).
	Topology overlay.Topology

	// TopologyMeanDegree tunes link density for the non-BLATANT
	// topologies (0 = 4, the paper's attained mean degree).
	TopologyMeanDegree float64

	// Policies lists the local scheduling policies assigned uniformly at
	// random to nodes.
	Policies []sched.Policy

	// Class selects batch or deadline jobs; DeadlineSlack sets the mean
	// extra slack for deadline jobs.
	Class         job.Class
	DeadlineSlack time.Duration

	// Submission is the job arrival plan.
	Submission workload.Schedule

	// Protocol carries the ARiA parameters (rescheduling knobs included).
	Protocol core.Config

	// ART selects the running-time error model.
	ART job.ARTModel

	// Expanding, when non-nil, grows the overlay during the run.
	Expanding *Expanding

	// Churn, when non-nil, kills random nodes during the run.
	Churn *Churn

	// Faults, when non-nil, injects link faults (loss, duplication,
	// jitter, partitions) into every transmission.
	Faults *Faults

	// ReservationFraction makes that share of jobs carry an advance
	// reservation with mean lead ReservationLead (extension; zero = the
	// paper's workload).
	ReservationFraction float64
	ReservationLead     time.Duration

	// MaintenanceInterval paces the swarm overlay manager's ant rounds
	// during the run (BLATANT-S self-organizes continuously); zero
	// disables runtime maintenance. Only meaningful for the BLATANT
	// topology.
	MaintenanceInterval time.Duration

	// Sites, when positive, switches the latency model from uniform
	// wide-area pairs to a grid-of-clusters model: nodes partition into
	// this many sites with LAN-class delays inside a site and WAN-class
	// delays across sites.
	Sites int

	// Horizon is the simulated time span.
	Horizon time.Duration

	// SampleInterval is the idle-sampling cadence and series bin width.
	SampleInterval time.Duration

	// EnsureSatisfiable redraws job requirements that no initial node can
	// satisfy (the paper's workload completes all 1000 jobs, implying the
	// same guarantee).
	EnsureSatisfiable bool

	// Trace retains the full causal trace-plane event stream (opt-in: a
	// full-scale run emits hundreds of thousands of span events). The
	// deployment gains a trace.Collector and the result carries per-kind
	// span counts; the stream feeds trace.Check and causal-tree rendering.
	Trace bool

	// Journal attaches a write-ahead journal to every node, so nodes
	// killed by Churn and brought back by Churn.Restart recover their
	// scheduler state instead of restarting amnesiac.
	Journal bool

	// Shards, when positive, runs the scenario on the sharded simulation
	// kernel with that many timer-heap partitions (sites shard together
	// under a Sites latency model, hash-assigned otherwise). Zero keeps
	// the legacy single-heap engine. Any positive value yields the same
	// seed-determined run as any other; the choice only affects
	// throughput. See sim.Sharded.
	Shards int

	// ShardCap, when positive, bounds the pending cross-lane events per
	// destination node under the sharded kernel; excess flood fan-out is
	// dropped at the source (the protocol's retry machinery absorbs it)
	// instead of growing the timer heaps without bound. Zero = unbounded.
	ShardCap int

	// ShardLog, with Shards > 0, retains the sharded kernel's per-lane
	// (time, sequence) execution log, readable after the run through
	// sim.Sharded.EventLogBytes. Two runs are behaviorally identical iff
	// their logs are byte-identical — the determinism tests' oracle.
	// Costs 16 bytes per event; leave off outside tests.
	ShardLog bool
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("scenario without name")
	case c.Nodes < 2:
		return fmt.Errorf("scenario %s: %d nodes, need at least 2", c.Name, c.Nodes)
	case len(c.Policies) == 0:
		return fmt.Errorf("scenario %s: no scheduling policies", c.Name)
	case c.Horizon <= 0:
		return fmt.Errorf("scenario %s: non-positive horizon %v", c.Name, c.Horizon)
	case c.SampleInterval <= 0:
		return fmt.Errorf("scenario %s: non-positive sample interval %v", c.Name, c.SampleInterval)
	case c.Class == job.ClassDeadline && c.DeadlineSlack <= 0:
		return fmt.Errorf("scenario %s: deadline class without slack", c.Name)
	}
	for _, p := range c.Policies {
		if !p.Valid() {
			return fmt.Errorf("scenario %s: invalid policy %d", c.Name, int(p))
		}
		if p.Class() != c.Class {
			return fmt.Errorf("scenario %s: policy %v does not schedule %v jobs", c.Name, p, c.Class)
		}
	}
	if err := c.Overlay.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	if c.Expanding != nil && c.Topology != 0 && c.Topology != overlay.TopologyBlatant {
		return fmt.Errorf("scenario %s: expanding requires the blatant topology, got %v", c.Name, c.Topology)
	}
	if err := c.Submission.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	if err := c.Protocol.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	if err := c.ART.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	if c.Expanding != nil {
		if err := c.Expanding.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", c.Name, err)
		}
	}
	if c.Churn != nil {
		if err := c.Churn.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", c.Name, err)
		}
		if c.Churn.Kills >= c.Nodes {
			return fmt.Errorf("scenario %s: churn would kill all %d nodes", c.Name, c.Nodes)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", c.Name, err)
		}
	}
	return nil
}

// Rescheduling reports whether the scenario runs with dynamic rescheduling.
func (c Config) Rescheduling() bool {
	return c.Protocol.Rescheduling()
}

// Scaled returns a copy resized for fast tests and benchmarks: node and job
// counts multiplied by frac (with sensible floors), submissions compressed
// proportionally, horizon trimmed to cover the reduced load.
func (c Config) Scaled(frac float64) Config {
	out := c
	out.Nodes = int(float64(c.Nodes) * frac)
	if out.Nodes < 16 {
		out.Nodes = 16
	}
	out.Submission.Count = int(float64(c.Submission.Count) * frac)
	if out.Submission.Count < 20 {
		out.Submission.Count = 20
	}
	out.Horizon = time.Duration(float64(c.Horizon) * frac * 2)
	// Leave room for the whole job tail to drain: truncated runs would
	// distort completion-time comparisons.
	if min := out.Submission.End() + 24*time.Hour; out.Horizon < min {
		out.Horizon = min
	}
	if c.Expanding != nil {
		e := *c.Expanding
		e.ExtraNodes = int(float64(e.ExtraNodes) * frac)
		if e.ExtraNodes < 4 {
			e.ExtraNodes = 4
		}
		out.Expanding = &e
	}
	if c.Churn != nil {
		ch := *c.Churn
		ch.Kills = int(float64(ch.Kills) * frac)
		if ch.Kills < 2 {
			ch.Kills = 2
		}
		if ch.Kills >= out.Nodes {
			ch.Kills = out.Nodes / 2
		}
		out.Churn = &ch
	}
	return out
}
