package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// Construct with NewTicker; the first invocation happens one period after
// construction (plus an optional phase offset).
type Ticker struct {
	engine  Kernel
	period  time.Duration
	fn      func()
	timer   *Timer
	stopped bool
}

// NewTicker schedules fn to run every period, starting at phase+period from
// now. Under the sharded kernel the ticker runs on the global lane. A
// non-positive period is rejected by returning nil.
func NewTicker(e Kernel, period, phase time.Duration, fn func()) *Ticker {
	if period <= 0 {
		return nil
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.timer = e.Schedule(phase+period, t.tick)
	return t
}

// Stop cancels future invocations. It is safe to call multiple times and
// from within the callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Cancel()
	}
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool {
	return t.stopped
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped {
		return
	}
	t.timer = t.engine.Schedule(t.period, t.tick)
}
