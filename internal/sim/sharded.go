package sim

import (
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"time"
)

// Sharded is a partitioned discrete-event executor: lanes (one per simulated
// node) are assigned to shards, each shard owns a private timer heap, and
// execution proceeds in epoch windows of width Epoch separated by barriers.
//
// Within a window every shard executes its due events independently — lane
// events touch only lane-local state, so no ordering between lanes is
// observable. Cross-lane events emitted during a window are not pushed
// directly: they are staged in the emitting shard's outbox and merged at the
// barrier under a seed-stable rule — sorted by (emission time, source lane,
// per-lane emission sequence) — which assigns destination-lane sequence
// numbers identically for every shard count. Together with per-lane RNG
// streams seeded from (seed, lane) and the window invariant Epoch ≤ minimum
// cross-lane latency (violations are deterministically clamped to the window
// boundary), the merged event order is a pure function of the seed,
// regardless of the shard count or GOMAXPROCS.
//
// Global events (GlobalLane: scenario churn, submission plans, tickers) run
// serially with every shard quiesced, strictly before any lane event at the
// same or a later instant.
//
// When GOMAXPROCS > 1 windows spanning several shards run on persistent
// worker goroutines (one per shard, synchronized by barrier channels); on a
// single processor, or for narrow windows, the coordinator executes shards
// inline. The two modes produce identical runs — that is the point of the
// barrier design — so the choice is purely a scheduling concern.
type Sharded struct {
	opts  ShardedOptions
	seed  int64
	procs int

	now       time.Duration
	phaseEnd  time.Duration
	inPhase   bool
	events    uint64
	gseq      uint64
	global    fastHeap
	globalRng *rand.Rand
	globalLog []logEntry

	lanes  []*laneState
	shards []*shard

	mergeIdx  []int
	actShards []*shard
	workersOn bool
	closed    bool
}

// ShardedOptions parameterizes NewSharded. The zero value gets 1 shard and
// a 1ms epoch.
type ShardedOptions struct {
	// Shards is the number of timer-heap partitions (minimum 1). Worker
	// parallelism is capped by GOMAXPROCS at construction time; extra
	// shards still help by keeping individual heaps small.
	Shards int

	// Epoch is the barrier window width Δ. Determinism holds for any
	// positive value, but deliveries scheduled across lanes closer than Δ
	// are clamped to the window boundary (inflating their latency by up
	// to Δ), so Δ should not exceed the latency model's minimum
	// cross-node delay. ClampCount reports how often the clamp engaged.
	Epoch time.Duration

	// LanePendingCap, when positive, bounds the pending cross-lane
	// events per destination lane: emissions beyond the cap are rejected
	// (ScheduleFrom returns false), backpressuring flood fan-out instead
	// of growing the heaps without bound. The cap is checked against the
	// epoch-start snapshot plus the emitter's own in-window contribution,
	// so a burst from many lanes can overshoot by at most one window.
	LanePendingCap int

	// Assign maps a lane to a shard index in [0, Shards); nil uses a
	// SplitMix64 hash. Region-based assignment (e.g. by site) improves
	// locality but has no effect on event order.
	Assign func(Lane) int

	// EventLog retains a per-lane (time, sequence) record of every
	// executed event, serialized by EventLogBytes. For determinism tests;
	// costs 16 bytes per event.
	EventLog bool
}

type logEntry struct {
	at  time.Duration
	seq uint64
}

// laneState is the per-lane execution context. During a window it is
// touched only by the owning shard's worker; between windows only by the
// coordinator.
type laneState struct {
	lane    Lane
	shard   *shard
	seq     uint64 // push sequence: same-lane and coordinator pushes
	xseq    uint64 // arrival sequence: barrier-merged cross-lane deliveries
	emitSeq uint64 // cross-lane emission sequence within this lane
	now     time.Duration
	rng     *rand.Rand

	// pending / pendingSnap implement the pending cap: pending is the
	// live count of undelivered cross-lane events targeting this lane,
	// pendingSnap its epoch-start snapshot (the value other lanes may
	// read mid-window). dirty marks lanes needing a snapshot refresh.
	pending     int32
	pendingSnap int32
	dirty       bool
	outCount    map[Lane]int32 // in-window emissions per destination

	drops  uint64 // emissions rejected by the destination pending cap
	clamps uint64 // deliveries clamped to the window boundary
	log    []logEntry
}

// outMsg is one staged cross-lane event awaiting the barrier merge. The
// destination is carried as a lane id, not a state pointer: lane states
// materialize only in coordinator context, and the merge runs there.
type outMsg struct {
	due     time.Duration
	emitAt  time.Duration
	srcLane Lane
	dstLane Lane
	emitSeq uint64
	fn      func()
}

// seqXFlag tags a cross-lane arrival's sequence number: within one lane at
// one instant, arrivals sort after same-lane events (the flag occupies the
// sequence ordering key's high bit). Arrivals draw from a separate per-lane
// counter (xseq) assigned in canonical merge order, which keeps the values
// — not just the order — identical for every shard count: a same-lane push
// mid-window must not observe how many arrivals have merged so far.
const seqXFlag uint64 = 1 << 63

// windowReq asks a worker to execute one window.
type windowReq struct {
	end   time.Duration // cross-lane visibility boundary
	bound time.Duration // execution bound (≤ end; differs when until cuts in)
}

type shard struct {
	id      int
	kernel  *Sharded
	heap    fastHeap
	outbox  []outMsg
	touched []*laneState

	// free recycles pooled (barrier-merged) timers after they fire. Only
	// the owning shard touches it: fired timers return in runWindow,
	// fresh ones are drawn at the barrier merge (coordinator context).
	free []*Timer

	// emitters lists lanes of this shard that emitted capped cross-lane
	// events this window, so the barrier clears exactly their outCounts.
	emitters []*laneState

	work chan windowReq
	done chan int
}

// NewSharded builds a sharded kernel for the given seed. The coordinator
// random source (Rand) is seeded with seed, exactly like NewEngine; lane
// sources are derived from (seed, lane).
func NewSharded(seed int64, opts ShardedOptions) *Sharded {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Epoch <= 0 {
		opts.Epoch = time.Millisecond
	}
	e := &Sharded{
		opts:      opts,
		seed:      seed,
		procs:     runtime.GOMAXPROCS(0),
		globalRng: rand.New(rand.NewSource(seed)),
	}
	e.shards = make([]*shard, opts.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{id: i, kernel: e}
	}
	return e
}

// Close releases the worker goroutines, if any were started. The kernel
// must not be used afterwards. Safe to call multiple times.
func (e *Sharded) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.workersOn {
		for _, s := range e.shards {
			close(s.work)
		}
	}
}

func (e *Sharded) shardOf(l Lane) *shard {
	if e.opts.Assign != nil {
		i := e.opts.Assign(l)
		if i < 0 || i >= len(e.shards) {
			i = int(splitmix64(uint64(int64(l))) % uint64(len(e.shards)))
		}
		return e.shards[i]
	}
	return e.shards[splitmix64(uint64(int64(l)))%uint64(len(e.shards))]
}

// lane returns the state for l, materializing it when create is set.
// Materialization happens only in coordinator context (node creation,
// startup scheduling), never concurrently with a window.
func (e *Sharded) lane(l Lane, create bool) *laneState {
	i := int(l)
	if i < len(e.lanes) && e.lanes[i] != nil {
		return e.lanes[i]
	}
	if !create {
		return nil
	}
	if i >= len(e.lanes) {
		grown := make([]*laneState, i+1+i/2)
		copy(grown, e.lanes)
		e.lanes = grown
	}
	ls := &laneState{lane: l, shard: e.shardOf(l)}
	e.lanes[i] = ls
	return ls
}

// alloc returns a recycled pooled timer, or a fresh one. Coordinator
// context only (the barrier merge).
func (s *shard) alloc() *Timer {
	if n := len(s.free); n > 0 {
		t := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return t
	}
	return new(Timer)
}

// Now implements Kernel: the committed global clock.
func (e *Sharded) Now() time.Duration { return e.now }

// LaneNow implements Kernel: the lane-local clock during a window, the
// committed clock otherwise.
func (e *Sharded) LaneNow(l Lane) time.Duration {
	// Open-coded lane lookup so the whole method inlines: this is the
	// hottest read in the kernel (every protocol action asks the time).
	if i := int(l); i >= 0 && i < len(e.lanes) {
		if ls := e.lanes[i]; ls != nil && ls.now > e.now {
			return ls.now
		}
	}
	return e.now
}

// Rand implements Kernel: the coordinator source, for global machinery.
func (e *Sharded) Rand() *rand.Rand { return e.globalRng }

// LaneRand implements Kernel: the lane's private stream, created on first
// use from (seed, lane).
func (e *Sharded) LaneRand(l Lane) *rand.Rand {
	ls := e.lane(l, true)
	if ls.rng == nil {
		ls.rng = rand.New(&laneSource{state: uint64(laneSeed(e.seed, l))})
	}
	return ls.rng
}

// laneSource is the per-lane rand.Source64: a SplitMix64 counter stream.
// Eight bytes of state per lane, versus the ~5KB (and attendant cache
// misses) of the default lagged-Fibonacci source — with 10k lanes the
// difference shows up in whole-run profiles. The stream is a pure function
// of (seed, lane), which is what lane-level determinism needs.
type laneSource struct{ state uint64 }

func (s *laneSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return splitmix64(s.state)
}

func (s *laneSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *laneSource) Seed(seed int64) { s.state = uint64(seed) }

// Events implements Kernel.
func (e *Sharded) Events() uint64 { return e.events }

// Pending implements Kernel.
func (e *Sharded) Pending() int {
	n := e.global.len()
	for _, s := range e.shards {
		n += s.heap.len()
	}
	return n
}

// CapDrops reports how many cross-lane emissions the pending cap rejected.
func (e *Sharded) CapDrops() uint64 {
	var n uint64
	for _, ls := range e.lanes {
		if ls != nil {
			n += ls.drops
		}
	}
	return n
}

// ClampCount reports how many deliveries were clamped to a window boundary
// because they were scheduled closer than Epoch. A nonzero count means the
// epoch exceeds the minimum cross-lane latency and latencies are being
// inflated; shrink Epoch to restore exact timing.
func (e *Sharded) ClampCount() uint64 {
	var n uint64
	for _, ls := range e.lanes {
		if ls != nil {
			n += ls.clamps
		}
	}
	return n
}

// Schedule implements Kernel: a global-lane event after delay. Must be
// called from coordinator context (scenario machinery, global callbacks).
func (e *Sharded) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt implements Kernel: a global-lane event at absolute time at.
func (e *Sharded) ScheduleAt(at time.Duration, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	t := &Timer{at: at, lane: GlobalLane, seq: e.gseq, fn: fn}
	e.gseq++
	e.global.push(t)
	return t
}

// ScheduleFrom implements Kernel. Same-lane events are pushed directly into
// the owning shard (they may execute within the current window). Cross-lane
// events emitted during a window are staged in the source shard's outbox for
// the barrier merge; emitted from coordinator context they are pushed
// directly in (serial, hence canonical) call order. A positive
// LanePendingCap may reject cross-lane events, reported by a false return.
func (e *Sharded) ScheduleFrom(src, dst Lane, delay time.Duration, fn func()) (*Timer, bool) {
	if delay < 0 {
		delay = 0
	}
	if dst == GlobalLane {
		return e.ScheduleAt(e.now+delay, fn), true
	}
	if src == dst {
		ls := e.lane(src, true)
		at := e.now
		if ls.now > at {
			at = ls.now
		}
		at += delay
		t := &Timer{at: at, lane: dst, seq: ls.seq, fn: fn}
		ls.seq++
		ls.shard.heap.push(t)
		return t, true
	}

	capped := e.opts.LanePendingCap > 0
	if e.inPhase && src != GlobalLane {
		// Worker context: stage in the source shard's outbox.
		ls := e.lane(src, true)
		dstLs := e.lane(dst, false)
		if capped {
			if ls.outCount == nil {
				ls.outCount = make(map[Lane]int32)
			}
			var snap int32
			if dstLs != nil {
				snap = dstLs.pendingSnap
			}
			if int(snap+ls.outCount[dst]) >= e.opts.LanePendingCap {
				ls.drops++
				return nil, false
			}
			if len(ls.outCount) == 0 {
				ls.shard.emitters = append(ls.shard.emitters, ls)
			}
			ls.outCount[dst]++
		}
		due := ls.now + delay
		if due < e.phaseEnd {
			due = e.phaseEnd
			ls.clamps++
		}
		if len(e.shards) == 1 {
			// Single shard: execution order within the window is exactly
			// the barrier's (emitAt, srcLane, emitSeq) merge order — one
			// shard always runs inline, serially, in heap order — so
			// pushing directly assigns the same arrival sequence numbers
			// the merge would. The clamp to the window boundary keeps
			// the event invisible until the next window, exactly as
			// staging would. Skips the outbox copy, the merge scan, and
			// a timer realloc per delivery.
			if dstLs == nil {
				dstLs = e.lane(dst, true)
			}
			t := ls.shard.alloc()
			*t = Timer{at: due, lane: dst, seq: dstLs.xseq | seqXFlag, fn: fn, xlane: capped, pooled: true}
			dstLs.xseq++
			if capped {
				dstLs.pending++
				dstLs.shard.touch(dstLs)
			}
			ls.shard.heap.push(t)
			return nil, true
		}
		ls.shard.outbox = append(ls.shard.outbox, outMsg{
			due: due, emitAt: ls.now, srcLane: src, dstLane: dst,
			emitSeq: ls.emitSeq, fn: fn,
		})
		ls.emitSeq++
		return nil, true
	}

	// Coordinator context: direct push in serial call order.
	dstLs := e.lane(dst, true)
	if capped && int(dstLs.pending) >= e.opts.LanePendingCap {
		srcLs := e.lane(src, src != GlobalLane)
		if srcLs != nil {
			srcLs.drops++
		}
		return nil, false
	}
	at := e.now + delay
	t := &Timer{at: at, lane: dst, seq: dstLs.seq, fn: fn, xlane: capped}
	dstLs.seq++
	if capped {
		dstLs.pending++
		dstLs.pendingSnap = dstLs.pending
	}
	dstLs.shard.heap.push(t)
	return t, true
}

const infTime = time.Duration(math.MaxInt64)

// Run implements Kernel: executes windows and global events until the next
// event lies beyond until, leaving the clock at until.
func (e *Sharded) Run(until time.Duration) int {
	return e.run(until, 0)
}

// RunAll implements Kernel: runs until the queues empty or about maxEvents
// callbacks have fired (checked at barriers, so the count may overshoot by
// up to one window).
func (e *Sharded) RunAll(maxEvents int) int {
	return e.run(infTime-e.opts.Epoch, maxEvents)
}

func (e *Sharded) run(until time.Duration, maxEvents int) int {
	executed := 0
	for {
		if maxEvents > 0 && executed >= maxEvents {
			return executed
		}
		gt := infTime
		if t := e.global.peekLive(nil); t != nil {
			gt = t.at
		}
		lt := infTime
		for _, s := range e.shards {
			if t := s.heap.peekLive(s); t != nil && t.at < lt {
				lt = t.at
			}
		}
		if gt == infTime && lt == infTime {
			break
		}
		if gt <= lt {
			// Global events run serially, shards quiesced, strictly
			// before lane events at the same instant.
			if gt > until {
				break
			}
			t := e.global.pop()
			e.now = t.at
			t.fired = true
			if e.opts.EventLog {
				e.globalLog = append(e.globalLog, logEntry{t.at, t.seq})
			}
			t.fn()
			e.events++
			executed++
			continue
		}
		if lt > until {
			break
		}
		// One epoch window [lt, end): every shard executes its due
		// events, cross-lane emissions stage in outboxes, then the
		// barrier merges them in canonical order.
		end := lt + e.opts.Epoch
		if gt < end {
			end = gt
		}
		bound := end
		if until < infTime && until+1 < bound {
			bound = until + 1
		}
		e.phaseEnd = end
		executed += e.window(end, bound)
		e.merge()
		if end <= until {
			e.now = end
		} else {
			e.now = until
		}
	}
	if e.now < until && until < infTime {
		e.now = until
	}
	return executed
}

// window executes all lane events due before bound, inline or on workers.
func (e *Sharded) window(end, bound time.Duration) int {
	due := 0
	for _, s := range e.shards {
		if t := s.heap.peekLive(s); t != nil && t.at < bound {
			due++
		}
	}
	if due == 0 {
		return 0
	}
	e.inPhase = true
	n := 0
	if due == 1 || e.procs == 1 {
		for _, s := range e.shards {
			if t := s.heap.peekLive(s); t != nil && t.at < bound {
				n += s.runWindow(e, bound)
			}
		}
	} else {
		e.startWorkers()
		req := windowReq{end: end, bound: bound}
		for _, s := range e.shards {
			s.work <- req
		}
		for _, s := range e.shards {
			n += <-s.done
		}
	}
	e.inPhase = false
	e.events += uint64(n)
	return n
}

func (e *Sharded) startWorkers() {
	if e.workersOn {
		return
	}
	e.workersOn = true
	for _, s := range e.shards {
		s.work = make(chan windowReq)
		s.done = make(chan int)
		go func(s *shard) {
			for req := range s.work {
				s.done <- s.runWindow(e, req.bound)
			}
		}(s)
	}
}

// runWindow drains one shard's events due before bound. Runs on the owning
// worker (or the coordinator inline); touches only shard- and lane-local
// state plus explicitly synchronized observers.
func (s *shard) runWindow(e *Sharded, bound time.Duration) int {
	n := 0
	logOn := e.opts.EventLog
	for {
		t := s.heap.peekLive(s)
		if t == nil || t.at >= bound {
			return n
		}
		s.heap.pop()
		ls := e.lanes[t.lane]
		ls.now = t.at
		if t.xlane {
			ls.pending--
			s.touch(ls)
		}
		if logOn {
			ls.log = append(ls.log, logEntry{t.at, t.seq})
		}
		t.fired = true
		t.fn()
		n++
		if t.pooled {
			t.fn = nil
			s.free = append(s.free, t)
		}
	}
}

func (s *shard) touch(ls *laneState) {
	if !ls.dirty {
		ls.dirty = true
		s.touched = append(s.touched, ls)
	}
}

// merge runs at the barrier: staged cross-lane events from every shard are
// pushed in (emission time, source lane, emission sequence) order — the
// order in which a single canonical executor would have pushed them —
// assigning destination sequence numbers that are therefore identical for
// every shard count and worker schedule. No sort is needed: runWindow pops
// in (at, lane, seq) order and same-lane pushes never go backward in time,
// so each shard's outbox is already sorted by that key and the barrier is a
// k-way merge of sorted runs. Pending-cap snapshots refresh here.
func (e *Sharded) merge() {
	capped := e.opts.LanePendingCap > 0
	act := e.actShards[:0]
	for _, s := range e.shards {
		if len(s.outbox) > 0 {
			act = append(act, s)
		}
	}
	switch len(act) {
	case 0:
	case 1:
		ob := act[0].outbox
		for i := range ob {
			e.mergePush(&ob[i], capped)
		}
	default:
		if cap(e.mergeIdx) < len(act) {
			e.mergeIdx = make([]int, len(act))
		}
		idx := e.mergeIdx[:len(act)]
		for i := range idx {
			idx[i] = 0
		}
		for {
			var bm *outMsg
			best := -1
			for s, sh := range act {
				if idx[s] >= len(sh.outbox) {
					continue
				}
				m := &sh.outbox[idx[s]]
				if bm == nil || m.emitAt < bm.emitAt ||
					(m.emitAt == bm.emitAt && (m.srcLane < bm.srcLane ||
						(m.srcLane == bm.srcLane && m.emitSeq < bm.emitSeq))) {
					bm, best = m, s
				}
			}
			if bm == nil {
				break
			}
			idx[best]++
			e.mergePush(bm, capped)
		}
	}
	for _, s := range act {
		s.outbox = s.outbox[:0]
	}
	e.actShards = act[:0]
	if capped {
		for _, s := range e.shards {
			for _, ls := range s.emitters {
				clear(ls.outCount)
			}
			s.emitters = s.emitters[:0]
			for _, ls := range s.touched {
				ls.pendingSnap = ls.pending
				ls.dirty = false
			}
			s.touched = s.touched[:0]
		}
	}
}

// mergePush commits one staged cross-lane event: the destination sequence
// number is assigned here, in canonical merge order.
func (e *Sharded) mergePush(m *outMsg, capped bool) {
	dst := e.lane(m.dstLane, true)
	t := dst.shard.alloc()
	*t = Timer{at: m.due, lane: dst.lane, seq: dst.xseq | seqXFlag, fn: m.fn, xlane: capped, pooled: true}
	dst.xseq++
	if capped {
		dst.pending++
		dst.shard.touch(dst)
	}
	dst.shard.heap.push(t)
	*m = outMsg{} // release the closure
}

// EventLogBytes serializes the execution log (EventLog option): for the
// global lane and then every lane in ascending order, the lane id, entry
// count, and each (time, sequence) pair, little-endian. Two runs are
// behaviorally identical iff their logs are byte-identical.
func (e *Sharded) EventLogBytes() []byte {
	var out []byte
	emit := func(lane Lane, log []logEntry) {
		if len(log) == 0 {
			return
		}
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(int64(lane)))
		out = append(out, w[:]...)
		binary.LittleEndian.PutUint64(w[:], uint64(len(log)))
		out = append(out, w[:]...)
		for _, le := range log {
			binary.LittleEndian.PutUint64(w[:], uint64(le.at))
			out = append(out, w[:]...)
			binary.LittleEndian.PutUint64(w[:], le.seq)
			out = append(out, w[:]...)
		}
	}
	emit(GlobalLane, e.globalLog)
	for _, ls := range e.lanes {
		if ls != nil {
			emit(ls.lane, ls.log)
		}
	}
	return out
}

// fastHeap is a 4-ary min-heap of timers ordered by (deadline, lane,
// sequence) — the per-shard replacement for the global container/heap
// queue. The ordering key is stored inline in each slot so sift compares
// touch only the contiguous heap array, never the timers themselves (the
// pointer chase was the dominant heap cost at 10k nodes). Cancelled timers
// are dropped lazily at peek.
type fastHeap struct {
	a []heapItem
}

type heapItem struct {
	at   time.Duration
	seq  uint64
	lane Lane
	t    *Timer
}

func itemLess(x, y *heapItem) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.lane != y.lane {
		return x.lane < y.lane
	}
	return x.seq < y.seq
}

func (h *fastHeap) len() int { return len(h.a) }

func (h *fastHeap) push(t *Timer) {
	h.a = append(h.a, heapItem{at: t.at, seq: t.seq, lane: t.lane, t: t})
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !itemLess(&a[i], &a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *fastHeap) pop() *Timer {
	a := h.a
	t := a[0].t
	last := len(a) - 1
	a[0] = a[last]
	a[last] = heapItem{}
	a = a[:last]
	h.a = a
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= len(a) {
			break
		}
		min := first
		stop := first + 4
		if stop > len(a) {
			stop = len(a)
		}
		for c := first + 1; c < stop; c++ {
			if itemLess(&a[c], &a[min]) {
				min = c
			}
		}
		if !itemLess(&a[min], &a[i]) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return t
}

// peekLive returns the earliest live timer, discarding cancelled ones (and,
// when s is the owning shard, releasing their pending-cap slots).
func (h *fastHeap) peekLive(s *shard) *Timer {
	for len(h.a) > 0 {
		t := h.a[0].t
		if !t.cancelled {
			return t
		}
		h.pop()
		if t.xlane && s != nil {
			// A cancelled cross-lane delivery still held a cap slot.
			// e.lanes is reachable via the timer's lane through the
			// shard's coordinator; decrement happens at the barrier via
			// the touched list of the owning shard.
			if ls := timerLane(s, t); ls != nil {
				ls.pending--
				s.touch(ls)
			}
		}
	}
	return nil
}

// timerLane resolves a timer's lane state through its shard. Cancelled
// cross-lane timers are rare; the indirection keeps fastHeap free of a
// kernel back-pointer on the hot path.
func timerLane(s *shard, t *Timer) *laneState {
	if s.kernel == nil {
		return nil
	}
	return s.kernel.lane(t.lane, false)
}
