package sim

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// syntheticLog drives a pseudo-random cross-lane cascade on a fresh sharded
// kernel and returns its serialized execution log. Every run parameter that
// may legally vary (shard count, GOMAXPROCS, assignment) is a argument;
// determinism means the returned bytes depend only on seed.
func syntheticLog(t *testing.T, seed int64, shards, procs int, assign func(Lane) int) []byte {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	const lanes = 32
	e := NewSharded(seed, ShardedOptions{
		Shards:   shards,
		Epoch:    time.Millisecond,
		EventLog: true,
		Assign:   assign,
	})
	defer e.Close()

	var step func(l Lane, depth int)
	step = func(l Lane, depth int) {
		if depth == 0 {
			return
		}
		r := e.LaneRand(l)
		for i := 0; i < 2; i++ {
			dst := Lane(r.Intn(lanes))
			delay := time.Millisecond + time.Duration(r.Intn(5000))*time.Microsecond
			e.ScheduleFrom(l, dst, delay, func() { step(dst, depth-1) })
		}
		// Same-lane follow-up, sub-epoch: exercises intra-window pushes.
		e.ScheduleFrom(l, l, 100*time.Microsecond, func() {})
	}
	for l := Lane(0); l < lanes; l++ {
		l := l
		e.ScheduleFrom(GlobalLane, l, time.Duration(l+1)*300*time.Microsecond, func() { step(l, 7) })
	}
	// A global observer ticking through the run: global events must
	// interleave identically too.
	var tick func()
	tick = func() {
		if e.Now() < 200*time.Millisecond {
			e.Schedule(10*time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll(0)
	return e.EventLogBytes()
}

// TestShardedDeterminismMatrix is the kernel-level determinism property:
// the execution log is byte-identical across shard counts and GOMAXPROCS
// settings for the same seed, including a deliberately lopsided shard
// assignment.
func TestShardedDeterminismMatrix(t *testing.T) {
	ref := syntheticLog(t, 42, 1, 1, nil)
	if len(ref) == 0 {
		t.Fatal("synthetic run produced an empty event log")
	}
	lopsided := func(l Lane) int {
		if l < 4 {
			return 0
		}
		return 1
	}
	cases := []struct {
		name   string
		shards int
		procs  int
		assign func(Lane) int
	}{
		{"shards4procs1", 4, 1, nil},
		{"shards16procs1", 16, 1, nil},
		{"shards1procs4", 1, 4, nil},
		{"shards4procs4", 4, 4, nil},
		{"shards16procs4", 16, 4, nil},
		{"lopsidedprocs4", 2, 4, lopsided},
	}
	for _, c := range cases {
		got := syntheticLog(t, 42, c.shards, c.procs, c.assign)
		if !bytes.Equal(ref, got) {
			t.Errorf("%s: event log diverged from shards=1/procs=1 reference (len %d vs %d)",
				c.name, len(got), len(ref))
		}
	}
	if other := syntheticLog(t, 43, 4, 1, nil); bytes.Equal(ref, other) {
		t.Error("different seeds produced identical logs; the log is not seed-sensitive")
	}
}

// TestShardedCrossLaneTiming verifies cross-lane deliveries keep their exact
// schedule when the delay respects the epoch, and are clamped (and counted)
// when it does not.
func TestShardedCrossLaneTiming(t *testing.T) {
	e := NewSharded(1, ShardedOptions{Shards: 4, Epoch: time.Millisecond})
	defer e.Close()
	var deliveredAt time.Duration
	e.ScheduleFrom(GlobalLane, 0, 2*time.Millisecond, func() {
		e.ScheduleFrom(0, 1, 5*time.Millisecond, func() {
			deliveredAt = e.LaneNow(1)
		})
	})
	e.RunAll(0)
	if want := 7 * time.Millisecond; deliveredAt != want {
		t.Fatalf("cross-lane delivery at %v, want %v", deliveredAt, want)
	}
	if e.ClampCount() != 0 {
		t.Fatalf("unexpected clamps: %d", e.ClampCount())
	}

	// Sub-epoch cross-lane delay: clamped to the window boundary.
	e2 := NewSharded(1, ShardedOptions{Shards: 4, Epoch: time.Millisecond})
	defer e2.Close()
	var at2 time.Duration
	e2.ScheduleFrom(GlobalLane, 0, time.Millisecond, func() {
		e2.ScheduleFrom(0, 1, 0, func() { at2 = e2.LaneNow(1) })
	})
	e2.RunAll(0)
	if e2.ClampCount() != 1 {
		t.Fatalf("clamp count %d, want 1", e2.ClampCount())
	}
	if at2 < time.Millisecond || at2 > 2*time.Millisecond {
		t.Fatalf("clamped delivery at %v, want within the next window", at2)
	}
}

// TestShardedGlobalBeforeLane: a global event at instant T runs strictly
// before any lane event at T.
func TestShardedGlobalBeforeLane(t *testing.T) {
	e := NewSharded(1, ShardedOptions{Shards: 2, Epoch: time.Millisecond})
	defer e.Close()
	var order []string
	e.ScheduleFrom(GlobalLane, 3, 5*time.Millisecond, func() { order = append(order, "lane") })
	e.ScheduleAt(5*time.Millisecond, func() { order = append(order, "global") })
	e.RunAll(0)
	if len(order) != 2 || order[0] != "global" || order[1] != "lane" {
		t.Fatalf("order = %v, want [global lane]", order)
	}
}

// TestShardedPendingCap: the per-destination cap rejects overflow from both
// coordinator context and worker context, counts drops, and frees slots as
// deliveries fire.
func TestShardedPendingCap(t *testing.T) {
	e := NewSharded(1, ShardedOptions{Shards: 2, Epoch: time.Millisecond, LanePendingCap: 3})
	defer e.Close()
	accepted := 0
	for i := 0; i < 10; i++ {
		if _, ok := e.ScheduleFrom(Lane(1+i), 0, 2*time.Millisecond, func() {}); ok {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("coordinator-context cap admitted %d, want 3", accepted)
	}
	if e.CapDrops() != 7 {
		t.Fatalf("cap drops %d, want 7", e.CapDrops())
	}
	e.RunAll(0)

	// Slots freed: a fresh burst is admitted again.
	if _, ok := e.ScheduleFrom(5, 0, time.Millisecond, func() {}); !ok {
		t.Fatal("cap slot not released after delivery")
	}

	// Worker-context (in-window) emission: lane 2 floods lane 3.
	e2 := NewSharded(1, ShardedOptions{Shards: 2, Epoch: time.Millisecond, LanePendingCap: 2})
	defer e2.Close()
	worker := 0
	e2.ScheduleFrom(GlobalLane, 2, time.Millisecond, func() {
		for i := 0; i < 6; i++ {
			if _, ok := e2.ScheduleFrom(2, 3, 2*time.Millisecond, func() {}); ok {
				worker++
			}
		}
	})
	e2.RunAll(0)
	if worker != 2 {
		t.Fatalf("worker-context cap admitted %d, want 2", worker)
	}
	if e2.CapDrops() != 4 {
		t.Fatalf("worker-context cap drops %d, want 4", e2.CapDrops())
	}
}

// TestShardedCancelReleasesCapSlot: cancelling a cross-lane delivery frees
// its pending-cap slot once the cancellation is collected.
func TestShardedCancelReleasesCapSlot(t *testing.T) {
	e := NewSharded(1, ShardedOptions{Shards: 1, Epoch: time.Millisecond, LanePendingCap: 1})
	defer e.Close()
	tm, ok := e.ScheduleFrom(1, 0, time.Millisecond, func() { t.Fatal("cancelled timer fired") })
	if !ok || tm == nil {
		t.Fatal("first cross-lane schedule rejected")
	}
	tm.Cancel()
	e.Run(5 * time.Millisecond)
	if _, ok := e.ScheduleFrom(1, 0, time.Millisecond, func() {}); !ok {
		t.Fatal("cap slot not released by cancellation")
	}
}

// TestShardedTimerPoolReuse hammers the pooled-timer path: enough sequential
// cross-lane waves to force heavy recycling, checking every delivery fires
// exactly once.
func TestShardedTimerPoolReuse(t *testing.T) {
	e := NewSharded(7, ShardedOptions{Shards: 4, Epoch: time.Millisecond})
	defer e.Close()
	const lanes, waves = 8, 200
	fired := 0
	var wave func(n int)
	wave = func(n int) {
		if n == 0 {
			return
		}
		for l := Lane(0); l < lanes; l++ {
			e.ScheduleFrom(l, (l+1)%lanes, 2*time.Millisecond, func() { fired++ })
		}
		e.ScheduleFrom(0, 0, 2*time.Millisecond, func() { wave(n - 1) })
	}
	e.ScheduleFrom(GlobalLane, 0, time.Millisecond, func() { wave(waves) })
	e.RunAll(0)
	want := lanes * waves
	if fired != want {
		t.Fatalf("fired %d pooled deliveries, want %d", fired, want)
	}
}

// TestShardedRunUntil mirrors the legacy engine's clock semantics: Run
// leaves the clock exactly at until, with later events intact.
func TestShardedRunUntil(t *testing.T) {
	e := NewSharded(1, ShardedOptions{Shards: 2, Epoch: time.Millisecond})
	defer e.Close()
	fired := false
	e.ScheduleFrom(GlobalLane, 1, 10*time.Millisecond, func() { fired = true })
	e.Run(5 * time.Millisecond)
	if fired {
		t.Fatal("event beyond until fired early")
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clock at %v after Run, want 5ms", e.Now())
	}
	e.Run(20 * time.Millisecond)
	if !fired {
		t.Fatal("event never fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d, want 0", e.Pending())
	}
}

// TestLaneRandIndependence: lane streams are pure functions of (seed, lane)
// — identical across kernels, distinct across lanes and seeds.
func TestLaneRandIndependence(t *testing.T) {
	a := NewSharded(9, ShardedOptions{Shards: 4})
	b := NewSharded(9, ShardedOptions{Shards: 16})
	c := NewSharded(10, ShardedOptions{Shards: 4})
	defer a.Close()
	defer b.Close()
	defer c.Close()
	for l := Lane(0); l < 8; l++ {
		x, y, z := a.LaneRand(l).Uint64(), b.LaneRand(l).Uint64(), c.LaneRand(l).Uint64()
		if x != y {
			t.Fatalf("lane %d stream differs across shard counts", l)
		}
		if x == z {
			t.Fatalf("lane %d stream identical across seeds", l)
		}
	}
	if a.LaneRand(0).Uint64() == a.LaneRand(1).Uint64() {
		t.Fatal("adjacent lanes drew identical values")
	}
}

// --- benchmarks -----------------------------------------------------------

// BenchmarkLegacyTimerPushPop measures the container/heap engine's timer
// queue; BenchmarkShardedTimerPushPop the sharded kernel's inline-key 4-ary
// heap on the same schedule-then-drain pattern.
func BenchmarkLegacyTimerPushPop(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 1024; k++ {
			e.Schedule(time.Duration(k%37)*time.Millisecond, fn)
		}
		e.RunAll(0)
	}
}

func BenchmarkShardedTimerPushPop(b *testing.B) {
	e := NewSharded(1, ShardedOptions{Shards: 1})
	defer e.Close()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 1024; k++ {
			e.ScheduleFrom(0, 0, time.Duration(k%37)*time.Millisecond, fn)
		}
		e.RunAll(0)
	}
}

// BenchmarkCrossShardDelivery measures the stage-merge-deliver path: every
// event hops to another lane on another shard.
func BenchmarkCrossShardDelivery(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		name := map[int]string{1: "shards1", 4: "shards4", 16: "shards16"}[shards]
		b.Run(name, func(b *testing.B) {
			e := NewSharded(1, ShardedOptions{Shards: shards, Epoch: time.Millisecond})
			defer e.Close()
			const lanes = 64
			remaining := b.N
			var hop func(l Lane)
			hop = func(l Lane) {
				if remaining <= 0 {
					return
				}
				remaining--
				e.ScheduleFrom(l, (l+1)%lanes, 2*time.Millisecond, func() { hop((l + 1) % lanes) })
			}
			b.ResetTimer()
			for l := Lane(0); l < lanes; l++ {
				l := l
				e.ScheduleFrom(GlobalLane, l, time.Millisecond, func() { hop(l) })
			}
			e.RunAll(0)
		})
	}
}
