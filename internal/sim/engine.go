// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives every simulated scenario in this repository: it owns a
// virtual clock, a cancellable timer queue, and a seeded random source.
// Events scheduled for the same instant fire in scheduling order, which makes
// runs bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a single-threaded discrete-event simulation executor.
//
// All callbacks run on the goroutine that calls Run, Step, or RunAll; user
// code scheduled on the engine must not block. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	queue  timerQueue
	now    time.Duration
	seq    uint64
	rng    *rand.Rand
	events uint64
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time, measured from the start of the
// simulation.
func (e *Engine) Now() time.Duration {
	return e.now
}

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand {
	return e.rng
}

// Events reports the total number of callbacks executed so far.
func (e *Engine) Events() uint64 {
	return e.events
}

// Pending reports the number of scheduled, not-yet-fired timers, including
// cancelled timers that have not yet been drained from the queue.
func (e *Engine) Pending() int {
	return len(e.queue)
}

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero. The returned timer may be used to cancel the callback.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time at. Times in
// the past are clamped to the current instant.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, t)
	return t
}

// Step executes the next pending event, advancing the clock to its deadline.
// It reports whether an event was executed; cancelled timers are skipped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		t, ok := heap.Pop(&e.queue).(*Timer)
		if !ok {
			return false
		}
		if t.cancelled {
			continue
		}
		e.now = t.at
		e.events++
		t.fired = true
		t.fn()
		return true
	}
	return false
}

// Run executes events until the queue is exhausted or the next event lies
// beyond until. The clock is left at the time of the last executed event, or
// at until when the queue still holds later events. It returns the number of
// events executed.
func (e *Engine) Run(until time.Duration) int {
	executed := 0
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > until {
			e.now = until
			return executed
		}
		if e.Step() {
			executed++
		}
	}
	if e.now < until {
		e.now = until
	}
	return executed
}

// RunAll executes events until the queue empties or maxEvents callbacks have
// run (0 means no limit). It returns the number of events executed.
func (e *Engine) RunAll(maxEvents int) int {
	executed := 0
	for e.Step() {
		executed++
		if maxEvents > 0 && executed >= maxEvents {
			break
		}
	}
	return executed
}

// peek returns the earliest live timer, discarding cancelled ones.
func (e *Engine) peek() *Timer {
	for len(e.queue) > 0 {
		t := e.queue[0]
		if !t.cancelled {
			return t
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Timer is a handle to a scheduled callback.
//
// Under the sharded kernel a timer belongs to a lane; Cancel must then be
// called from that lane's execution context (or from coordinator context
// between windows), which is how the protocol already uses it — nodes only
// cancel their own timers.
type Timer struct {
	at        time.Duration
	seq       uint64
	lane      Lane
	fn        func()
	cancelled bool
	fired     bool

	// xlane marks a cross-lane delivery holding a pending-cap slot in the
	// sharded kernel; the slot is released when the timer fires or its
	// cancellation is collected.
	xlane bool

	// pooled marks a barrier-merged delivery in the sharded kernel: no
	// caller holds a reference (ScheduleFrom returned nil for it), so it
	// can never be cancelled and is recycled into the shard's free list
	// after firing.
	pooled bool
}

// When reports the virtual time the timer is due to fire.
func (t *Timer) When() time.Duration {
	return t.at
}

// Cancel prevents the callback from running. It reports whether the
// cancellation took effect (false when the timer already fired or was
// already cancelled).
func (t *Timer) Cancel() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	return true
}

// Fired reports whether the callback has already run.
func (t *Timer) Fired() bool {
	return t.fired
}

// timerQueue is a min-heap ordered by (deadline, scheduling sequence).
type timerQueue []*Timer

func (q timerQueue) Len() int { return len(q) }

func (q timerQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q timerQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *timerQueue) Push(x any) {
	t, ok := x.(*Timer)
	if !ok {
		return
	}
	*q = append(*q, t)
}

func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
