package sim

import (
	"math/rand"
	"time"
)

// Lane identifies an independent execution context inside a kernel — under
// the sharded engine, one lane per simulated node. Lanes are the unit of
// partitioning: events on the same lane execute in strict (deadline, seq)
// order, events on different lanes only synchronize at epoch barriers.
// Lane identity, not shard assignment, is what event ordering is defined
// over, which is why the merged event order is independent of the shard
// count and of GOMAXPROCS.
type Lane int32

// GlobalLane is the coordinator lane: scenario machinery (submission plans,
// churn injection, tickers, samplers) that may touch many nodes at once.
// Global events never run concurrently with lane events — the sharded
// kernel quiesces every shard before executing one.
const GlobalLane Lane = -1

// Kernel is the discrete-event executor interface shared by the legacy
// single-heap Engine and the sharded engine. Everything that drives a
// simulation (SimCluster, the scenario runner, tickers) programs against
// it, so the two engines are drop-in interchangeable.
type Kernel interface {
	// Now is the committed virtual time: the global clock as of the last
	// completed event (legacy) or epoch barrier (sharded).
	Now() time.Duration

	// LaneNow is the virtual time as observed from the given lane: the
	// deadline of the lane event currently executing, or Now between
	// events. Under the legacy engine it equals Now.
	LaneNow(lane Lane) time.Duration

	// Rand is the coordinator random source, for global scenario
	// machinery only. Lane callbacks must use LaneRand.
	Rand() *rand.Rand

	// LaneRand is the lane's private deterministic random source. Under
	// the legacy engine all lanes share the engine source (single-threaded
	// execution makes the draw order deterministic anyway); the sharded
	// engine gives every lane its own stream seeded from (seed, lane).
	LaneRand(lane Lane) *rand.Rand

	// Schedule arranges for fn to run on the global lane after delay.
	Schedule(delay time.Duration, fn func()) *Timer

	// ScheduleAt arranges for fn to run on the global lane at absolute
	// virtual time at.
	ScheduleAt(at time.Duration, fn func()) *Timer

	// ScheduleFrom arranges for fn to run on lane dst after delay, the
	// call originating from lane src (GlobalLane for coordinator
	// context). It reports false when the destination lane's pending cap
	// rejected the event (backpressure); the timer is nil in that case.
	// Same-lane events (src == dst) are never rejected.
	ScheduleFrom(src, dst Lane, delay time.Duration, fn func()) (*Timer, bool)

	// Events reports the number of callbacks executed so far.
	Events() uint64

	// Pending reports the number of scheduled, not-yet-fired timers.
	Pending() int

	// Run executes events until the queue is exhausted or the next event
	// lies beyond until, returning the number executed.
	Run(until time.Duration) int

	// RunAll executes events until the queue empties or about maxEvents
	// callbacks have run (0 = no limit), returning the number executed.
	RunAll(maxEvents int) int
}

var (
	_ Kernel = (*Engine)(nil)
	_ Kernel = (*Sharded)(nil)
)

// LaneNow implements Kernel: the legacy engine has a single clock.
func (e *Engine) LaneNow(Lane) time.Duration { return e.now }

// LaneRand implements Kernel: the legacy engine's single-threaded execution
// makes its one shared stream deterministic for every lane.
func (e *Engine) LaneRand(Lane) *rand.Rand { return e.rng }

// ScheduleFrom implements Kernel: the legacy engine ignores lanes entirely
// and never rejects an event.
func (e *Engine) ScheduleFrom(_, _ Lane, delay time.Duration, fn func()) (*Timer, bool) {
	return e.Schedule(delay, fn), true
}

// splitmix64 is the SplitMix64 mixer: a bijective avalanche over uint64,
// used to derive independent per-lane seeds and per-transmission fault
// draws from a run seed without any shared draw-order state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// laneSeed derives the RNG seed for one lane of a run.
func laneSeed(seed int64, lane Lane) int64 {
	return int64(splitmix64(uint64(seed)^splitmix64(uint64(int64(lane)))) & 0x7fffffffffffffff)
}
