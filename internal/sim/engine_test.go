package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if got := e.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.RunAll(0)
	want := []int{1, 2, 3}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunAll(0)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-instant events out of scheduling order: %v", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(-time.Hour, func() { fired = true })
	e.RunAll(0)
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Minute, func() {})
	e.RunAll(0)
	fired := time.Duration(-1)
	e.ScheduleAt(time.Second, func() { fired = e.Now() })
	e.RunAll(0)
	if fired != time.Minute {
		t.Fatalf("past event fired at %v, want clamp to %v", fired, time.Minute)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(1*time.Second, func() { count++ })
	e.Schedule(10*time.Second, func() { count++ })
	n := e.Run(5 * time.Second)
	if n != 1 || count != 1 {
		t.Fatalf("Run(5s) executed %d events (count %d), want 1", n, count)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", e.Now())
	}
	n = e.Run(20 * time.Second)
	if n != 1 || count != 2 {
		t.Fatalf("second Run executed %d events (count %d), want 1/2", n, count)
	}
}

func TestRunAdvancesToUntilWithEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	e.Run(time.Hour)
	if e.Now() != time.Hour {
		t.Fatalf("Now() = %v, want 1h", e.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel() = false, want true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	e.RunAll(0)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.Schedule(time.Second, func() {})
	e.RunAll(0)
	if !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if tm.Cancel() {
		t.Fatal("Cancel() after firing = true, want false")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(time.Second, func() {
		order = append(order, "outer")
		e.Schedule(time.Second, func() { order = append(order, "inner") })
	})
	e.RunAll(0)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
}

func TestRunAllMaxEvents(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 100; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	n := e.RunAll(10)
	if n != 10 || count != 10 {
		t.Fatalf("RunAll(10) ran %d events (count %d), want 10", n, count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		var log []time.Duration
		for i := 0; i < 50; i++ {
			e.Schedule(time.Duration(e.Rand().Intn(1000))*time.Millisecond, func() {
				log = append(log, e.Now())
			})
		}
		e.RunAll(0)
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTickerPeriodicFiring(t *testing.T) {
	e := NewEngine(1)
	var at []time.Duration
	tick := NewTicker(e, time.Minute, 0, func() { at = append(at, e.Now()) })
	if tick == nil {
		t.Fatal("NewTicker returned nil for valid period")
	}
	e.Run(5*time.Minute + time.Second)
	if len(at) != 5 {
		t.Fatalf("ticker fired %d times, want 5 (at %v)", len(at), at)
	}
	for i, a := range at {
		want := time.Duration(i+1) * time.Minute
		if a != want {
			t.Fatalf("tick %d at %v, want %v", i, a, want)
		}
	}
}

func TestTickerPhase(t *testing.T) {
	e := NewEngine(1)
	var first time.Duration
	NewTicker(e, time.Minute, 30*time.Second, func() {
		if first == 0 {
			first = e.Now()
		}
	})
	e.Run(3 * time.Minute)
	if first != 90*time.Second {
		t.Fatalf("first tick at %v, want 90s", first)
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(e, time.Minute, 0, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run(time.Hour)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3, want 3", count)
	}
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestTickerInvalidPeriod(t *testing.T) {
	e := NewEngine(1)
	if tk := NewTicker(e, 0, 0, func() {}); tk != nil {
		t.Fatal("NewTicker(period=0) != nil")
	}
	if tk := NewTicker(e, -time.Second, 0, func() {}); tk != nil {
		t.Fatal("NewTicker(period<0) != nil")
	}
}

// Property: for any batch of random delays, events fire in nondecreasing
// time order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine(seed)
		var fireTimes []time.Duration
		var max time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			if d > max {
				max = d
			}
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.RunAll(0)
		if len(fireTimes) != len(raw) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of timers fires exactly the rest.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, raw []uint16, mask []bool) bool {
		e := NewEngine(seed)
		fired := 0
		wantFired := 0
		for i, r := range raw {
			tm := e.Schedule(time.Duration(r)*time.Millisecond, func() { fired++ })
			if i < len(mask) && mask[i] {
				tm.Cancel()
			} else {
				wantFired++
			}
		}
		e.RunAll(0)
		return fired == wantFired
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
