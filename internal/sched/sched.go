// Package sched implements the local scheduling policies ARiA coordinates:
// the queue disciplines (FCFS, SJF, EDF, plus the paper's future-work
// Priority and LJF policies) and the two meta-scheduling cost functions,
// Estimated Time To Completion (ETTC) for batch schedulers and Negative
// Accumulated Lateness (NAL) for deadline schedulers.
//
// A Queue holds jobs that are waiting, not the one that is executing; the
// protocol layer tracks the running job and passes its remaining time into
// the cost functions. Every node executes one job at a time (§III-A), so
// position in the queue fully determines estimated completion.
package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/job"
)

// Policy selects a local queue discipline.
type Policy int

// Queue disciplines. FCFS, SJF, and EDF are the paper's evaluated policies;
// Priority and LJF implement its future-work extension list.
const (
	FCFS Policy = iota + 1
	SJF
	EDF
	Priority
	LJF
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case SJF:
		return "SJF"
	case EDF:
		return "EDF"
	case Priority:
		return "Priority"
	case LJF:
		return "LJF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Class reports the scheduling domain the policy belongs to; batch and
// deadline offers are never mixed because their costs are not comparable.
func (p Policy) Class() job.Class {
	if p == EDF {
		return job.ClassDeadline
	}
	return job.ClassBatch
}

// Valid reports whether p names a known policy.
func (p Policy) Valid() bool {
	switch p {
	case FCFS, SJF, EDF, Priority, LJF:
		return true
	}
	return false
}

// Policies lists every implemented queue discipline.
func Policies() []Policy {
	return []Policy{FCFS, SJF, EDF, Priority, LJF}
}

// ParsePolicy resolves a policy name, case-insensitively.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if strings.EqualFold(p.String(), s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

// Cost is a scheduling offer value; lower is better. Batch costs are ETTC
// seconds (always positive); deadline costs are NAL seconds (negative when
// every job meets its deadline).
type Cost float64

type entry struct {
	job *job.Job
	seq int
}

// Queue is a policy-ordered scheduling queue for a single node.
//
// Queue is not safe for concurrent use; the protocol node serializes access.
type Queue struct {
	policy   Policy
	perf     float64
	items    []entry
	seq      int
	backfill bool
}

// New constructs a queue with the given discipline for a node whose
// performance index is perfIndex (must be >= 1 per the resource model; any
// positive value is accepted to ease testing).
func New(policy Policy, perfIndex float64) (*Queue, error) {
	if !policy.Valid() {
		return nil, fmt.Errorf("invalid policy %d", int(policy))
	}
	if perfIndex <= 0 {
		return nil, fmt.Errorf("non-positive performance index %v", perfIndex)
	}
	return &Queue{policy: policy, perf: perfIndex, backfill: true}, nil
}

// SetBackfill toggles EASY-style backfilling around advance reservations
// (on by default; it only matters when reserved jobs are queued).
func (q *Queue) SetBackfill(enabled bool) {
	q.backfill = enabled
}

// Policy reports the queue's discipline.
func (q *Queue) Policy() Policy { return q.policy }

// Class reports the queue's scheduling domain.
func (q *Queue) Class() job.Class { return q.policy.Class() }

// PerfIndex reports the node performance index used for ERT scaling.
func (q *Queue) PerfIndex() float64 { return q.perf }

// Len reports the number of queued (waiting) jobs.
func (q *Queue) Len() int { return len(q.items) }

// Enqueue adds j to the queue, stamping its enqueue time.
func (q *Queue) Enqueue(j *job.Job, now time.Duration) {
	j.State = job.StateQueued
	j.EnqueuedAt = now
	q.items = append(q.items, entry{job: j, seq: q.seq})
	q.seq++
}

// Remove deletes the job with the given UUID, reporting whether it was
// present. Used when a job is rescheduled away from this node.
func (q *Queue) Remove(uuid job.UUID) bool {
	for i, e := range q.items {
		if e.job.UUID == uuid {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Get returns the queued job with the given UUID, if present.
func (q *Queue) Get(uuid job.UUID) (*job.Job, bool) {
	for _, e := range q.items {
		if e.job.UUID == uuid {
			return e.job, true
		}
	}
	return nil, false
}

// Peek returns the job the policy would execute at the given instant
// without removing it: the policy-order head when its reservation (if any)
// allows, otherwise — with backfilling on — the first eligible job short
// enough to finish before the head's reservation opens. It returns nil
// when no queued job may start now.
func (q *Queue) Peek(now time.Duration) *job.Job {
	ordered := q.ordered()
	if len(ordered) == 0 {
		return nil
	}
	head := ordered[0].job
	if head.EarliestStart <= now {
		return head
	}
	if !q.backfill {
		return nil
	}
	// EASY backfill against the head's reservation: a candidate may run
	// if its estimated completion does not delay the reserved head.
	for _, e := range ordered[1:] {
		j := e.job
		if j.EarliestStart > now {
			continue
		}
		if now+j.ERTOn(q.perf) <= head.EarliestStart {
			return j
		}
	}
	return nil
}

// Pop removes and returns the job to execute at the given instant, or nil
// when none is eligible (empty queue, or all queued jobs reserved for
// later with no backfill fitting).
func (q *Queue) Pop(now time.Duration) *job.Job {
	j := q.Peek(now)
	if j == nil {
		return nil
	}
	q.Remove(j.UUID)
	return j
}

// NextEligibleAt reports the earliest instant after now at which Peek
// could return a job; ok is false when the queue is empty or a job is
// already eligible. The executor uses it to arm a wake-up when every
// queued job is blocked behind a reservation.
func (q *Queue) NextEligibleAt(now time.Duration) (time.Duration, bool) {
	if len(q.items) == 0 || q.Peek(now) != nil {
		return 0, false
	}
	var earliest time.Duration
	found := false
	for _, e := range q.items {
		if es := e.job.EarliestStart; es > now && (!found || es < earliest) {
			earliest = es
			found = true
		}
	}
	return earliest, found
}

// Jobs returns the queued jobs in scheduled (policy) order. The slice is a
// fresh copy; the jobs themselves are shared.
func (q *Queue) Jobs() []*job.Job {
	ordered := q.ordered()
	out := make([]*job.Job, len(ordered))
	for i, e := range ordered {
		out[i] = e.job
	}
	return out
}

// ordered returns entries sorted by the queue discipline, with enqueue
// sequence as the stable tiebreak.
func (q *Queue) ordered() []entry {
	out := make([]entry, len(q.items))
	copy(out, q.items)
	sort.SliceStable(out, func(i, k int) bool {
		return q.less(out[i], out[k])
	})
	return out
}

func (q *Queue) less(a, b entry) bool {
	switch q.policy {
	case FCFS:
		return a.seq < b.seq
	case SJF:
		if a.job.ERT != b.job.ERT {
			return a.job.ERT < b.job.ERT
		}
	case LJF:
		if a.job.ERT != b.job.ERT {
			return a.job.ERT > b.job.ERT
		}
	case EDF:
		if a.job.Deadline != b.job.Deadline {
			return a.job.Deadline < b.job.Deadline
		}
	case Priority:
		if a.job.Priority != b.job.Priority {
			return a.job.Priority > b.job.Priority
		}
	}
	return a.seq < b.seq
}

// ErrWrongClass is returned when a job's class does not match the queue's
// scheduling domain.
var ErrWrongClass = fmt.Errorf("job class does not match scheduler class")

// OfferCost computes the cost of prospectively accepting p, given that the
// currently running job (if any) still needs runningRemaining to finish.
// For batch queues this is ETTC; for deadline queues, NAL over Q ∪ {p}.
// now is the current absolute time (needed by NAL's absolute completion
// times).
func (q *Queue) OfferCost(p job.Profile, now, runningRemaining time.Duration) (Cost, error) {
	if p.Class != q.Class() {
		return 0, ErrWrongClass
	}
	if q.policy == EDF {
		return q.nal(job.New(p), now, runningRemaining), nil
	}
	return q.ettc(p, now, runningRemaining), nil
}

// QueuedCost computes the comparable cost of a job already in this queue:
// its current ETTC for batch queues, or the NAL of the queue as it stands
// for deadline queues. It reports false when the job is not queued here.
func (q *Queue) QueuedCost(uuid job.UUID, now, runningRemaining time.Duration) (Cost, bool) {
	j, ok := q.Get(uuid)
	if !ok {
		return 0, false
	}
	if q.policy == EDF {
		return q.nal(nil, now, runningRemaining), true
	}
	// ETTC of a queued job: remaining running time plus everything
	// scheduled ahead of it (respecting reservations), plus its own
	// scaled estimate.
	busy := runningRemaining
	for _, e := range q.ordered() {
		busy = startRel(busy, e.job.EarliestStart, now) + e.job.ERTOn(q.perf)
		if e.job.UUID == j.UUID {
			return Cost(busy.Seconds()), true
		}
	}
	return 0, false
}

// startRel returns the relative start offset of a job given the queue is
// busy until busy (relative) and the job holds a reservation at absolute
// earliestStart.
func startRel(busy, earliestStart, now time.Duration) time.Duration {
	if earliestStart <= now {
		return busy
	}
	if wait := earliestStart - now; wait > busy {
		return wait
	}
	return busy
}

// ettc computes the Estimated Time To Completion of prospective job p:
// the relative time at which p would finish under this policy and load,
// accounting for advance reservations of the jobs scheduled ahead of it.
func (q *Queue) ettc(p job.Profile, now, runningRemaining time.Duration) Cost {
	probe := entry{job: job.New(p), seq: q.seq} // ties go to incumbents
	busy := runningRemaining
	for _, e := range q.ordered() {
		if q.less(e, probe) {
			busy = startRel(busy, e.job.EarliestStart, now) + e.job.ERTOn(q.perf)
		}
	}
	busy = startRel(busy, p.EarliestStart, now)
	return Cost((busy + p.ERTOn(q.perf)).Seconds())
}

// nal computes the Negative Accumulated Lateness over Q' = Q ∪ {extra}
// (extra may be nil to evaluate the queue as it stands):
//
//	NAL = Σ_{job ∈ Q'} δ(job, Q') · |γ_job|,  γ = deadline − ETC
//
// where δ is −1 for every job when all of Q' meets its deadlines, 0 for
// on-time jobs when at least one job is late, and 1 for late jobs. ETC is
// the absolute estimated completion under EDF order starting after the
// currently running job.
func (q *Queue) nal(extra *job.Job, now, runningRemaining time.Duration) Cost {
	entries := q.ordered()
	if extra != nil {
		probe := entry{job: extra, seq: q.seq}
		entries = append(entries, probe)
		sort.SliceStable(entries, func(i, k int) bool { return q.less(entries[i], entries[k]) })
	}
	cum := now + runningRemaining
	gammas := make([]time.Duration, len(entries))
	anyLate := false
	for i, e := range entries {
		if e.job.EarliestStart > cum {
			cum = e.job.EarliestStart
		}
		cum += e.job.ERTOn(q.perf)
		gammas[i] = e.job.Deadline - cum
		if gammas[i] < 0 {
			anyLate = true
		}
	}
	var total float64
	for _, g := range gammas {
		switch {
		case anyLate && g < 0:
			total += -g.Seconds() // |γ| with δ = 1
		case anyLate:
			// δ = 0 for on-time jobs in a late queue.
		default:
			total -= g.Seconds() // δ = −1, |γ| = γ
		}
	}
	return Cost(total)
}

// CandidateSelection picks which queued jobs a node advertises for
// rescheduling. SelectPaper is the §III-D rule; the others exist to ablate
// that design choice.
type CandidateSelection int

// Candidate selection policies.
const (
	// SelectPaper: longest grid waiting time for batch queues, least
	// deadline slack for EDF queues (§III-D).
	SelectPaper CandidateSelection = iota
	// SelectNewest: most recently submitted first (anti-paper).
	SelectNewest
	// SelectCostliest: jobs with the highest current local cost first —
	// the jobs that would benefit most from moving, ignoring fairness.
	SelectCostliest
)

// String names the selection policy.
func (s CandidateSelection) String() string {
	switch s {
	case SelectPaper:
		return "paper"
	case SelectNewest:
		return "newest"
	case SelectCostliest:
		return "costliest"
	default:
		return fmt.Sprintf("CandidateSelection(%d)", int(s))
	}
}

// Valid reports whether s names a known selection policy.
func (s CandidateSelection) Valid() bool {
	return s >= SelectPaper && s <= SelectCostliest
}

// RescheduleCandidates selects up to n queued jobs to advertise via INFORM
// messages using the paper's §III-D rule: batch queues prefer the jobs
// that have waited longest since grid submission; deadline queues prefer
// the jobs with the least lateness slack.
func (q *Queue) RescheduleCandidates(n int, now, runningRemaining time.Duration) []*job.Job {
	return q.RescheduleCandidatesBy(SelectPaper, n, now, runningRemaining)
}

// RescheduleCandidatesBy selects advertisement candidates under an explicit
// selection policy (ablations of the paper's rule).
func (q *Queue) RescheduleCandidatesBy(sel CandidateSelection, n int, now, runningRemaining time.Duration) []*job.Job {
	if n <= 0 || len(q.items) == 0 {
		return nil
	}
	jobs := q.Jobs()
	switch sel {
	case SelectNewest:
		sort.SliceStable(jobs, func(i, k int) bool {
			return jobs[i].SubmittedAt > jobs[k].SubmittedAt
		})
		if n > len(jobs) {
			n = len(jobs)
		}
		return jobs[:n]
	case SelectCostliest:
		type costed struct {
			j    *job.Job
			cost Cost
		}
		cs := make([]costed, 0, len(jobs))
		for _, j := range jobs {
			c, ok := q.QueuedCost(j.UUID, now, runningRemaining)
			if !ok {
				continue
			}
			cs = append(cs, costed{j: j, cost: c})
		}
		sort.SliceStable(cs, func(i, k int) bool { return cs[i].cost > cs[k].cost })
		out := make([]*job.Job, 0, n)
		for i := 0; i < len(cs) && i < n; i++ {
			out = append(out, cs[i].j)
		}
		return out
	}
	if q.policy == EDF {
		// Least slack first: γ under the current schedule.
		type slacked struct {
			j     *job.Job
			gamma time.Duration
		}
		cum := now + runningRemaining
		sl := make([]slacked, len(jobs))
		for i, j := range jobs {
			cum += j.ERTOn(q.perf)
			sl[i] = slacked{j: j, gamma: j.Deadline - cum}
		}
		sort.SliceStable(sl, func(i, k int) bool { return sl[i].gamma < sl[k].gamma })
		out := make([]*job.Job, 0, n)
		for i := 0; i < len(sl) && i < n; i++ {
			out = append(out, sl[i].j)
		}
		return out
	}
	// Longest grid waiting time first (oldest submission).
	byWait := make([]*job.Job, len(jobs))
	copy(byWait, jobs)
	sort.SliceStable(byWait, func(i, k int) bool {
		return byWait[i].SubmittedAt < byWait[k].SubmittedAt
	})
	if n > len(byWait) {
		n = len(byWait)
	}
	out := make([]*job.Job, n)
	copy(out, byWait[:n])
	return out
}
