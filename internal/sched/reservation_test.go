package sched

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
)

func reservedJob(ert, earliestStart time.Duration) *job.Job {
	j := batchJob(ert)
	j.EarliestStart = earliestStart
	return j
}

func TestReservationBlocksHead(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	q.Enqueue(reservedJob(time.Hour, 2*time.Hour), 0)
	if got := q.Peek(0); got != nil {
		t.Fatal("reserved job eligible before its start")
	}
	if got := q.Pop(time.Hour); got != nil {
		t.Fatal("Pop released reserved job early")
	}
	if got := q.Pop(2 * time.Hour); got == nil {
		t.Fatal("Pop refused job at its reservation instant")
	}
}

func TestBackfillRunsShortJobFirst(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	reserved := reservedJob(time.Hour, 3*time.Hour)
	short := batchJob(time.Hour) // fits before the reservation
	q.Enqueue(reserved, 0)
	q.Enqueue(short, 0)
	got := q.Pop(0)
	if got != short {
		t.Fatalf("backfill should pick the short job, got %v", got)
	}
}

func TestBackfillRefusesJobThatWouldDelayReservation(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	q.Enqueue(reservedJob(time.Hour, 2*time.Hour), 0)
	q.Enqueue(batchJob(3*time.Hour), 0) // too long to fit before 2h
	if got := q.Peek(0); got != nil {
		t.Fatalf("backfill picked a job that delays the reservation: %v", got)
	}
}

func TestBackfillRespectsWindowShrinking(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	q.Enqueue(reservedJob(time.Hour, 2*time.Hour), 0)
	filler := batchJob(time.Hour)
	q.Enqueue(filler, 0)
	if got := q.Peek(30 * time.Minute); got != filler {
		t.Fatal("1h filler should fit in the remaining 1.5h window")
	}
	if got := q.Peek(90 * time.Minute); got != nil {
		t.Fatal("1h filler no longer fits in a 30m window")
	}
}

func TestSetBackfillOff(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	q.SetBackfill(false)
	q.Enqueue(reservedJob(time.Hour, 2*time.Hour), 0)
	q.Enqueue(batchJob(30*time.Minute), 0)
	if got := q.Peek(0); got != nil {
		t.Fatal("backfill happened while disabled")
	}
}

func TestNextEligibleAt(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	if _, ok := q.NextEligibleAt(0); ok {
		t.Fatal("empty queue reported an eligibility instant")
	}
	q.Enqueue(reservedJob(time.Hour, 3*time.Hour), 0)
	q.Enqueue(reservedJob(time.Hour, 2*time.Hour), 0)
	at, ok := q.NextEligibleAt(0)
	if !ok || at != 2*time.Hour {
		t.Fatalf("NextEligibleAt = %v/%v, want 2h", at, ok)
	}
	// An eligible job means no wake-up is needed.
	q.Enqueue(batchJob(time.Minute), 0)
	if _, ok := q.NextEligibleAt(0); ok {
		t.Fatal("eligibility instant reported while a job can run")
	}
}

func TestETTCAccountsForReservations(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	// Head reserved at t=5h: the queue is effectively blocked until then.
	q.Enqueue(reservedJob(time.Hour, 5*time.Hour), 0)
	p := batchJob(time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// FCFS: probe runs after the reserved job: start 5h + 1h run, then
	// probe 1h → completes at 7h.
	want := Cost((7 * time.Hour).Seconds())
	if cost != want {
		t.Fatalf("ETTC = %v, want %v", cost, want)
	}
}

func TestETTCProbeOwnReservation(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	p := batchJob(time.Hour).Profile
	p.EarliestStart = 4 * time.Hour
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost((5 * time.Hour).Seconds()) // waits for its own reservation
	if cost != want {
		t.Fatalf("ETTC = %v, want %v", cost, want)
	}
}

func TestQueuedCostWithReservation(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	reserved := reservedJob(time.Hour, 5*time.Hour)
	tail := batchJob(time.Hour)
	q.Enqueue(reserved, 0)
	q.Enqueue(tail, 0)
	cost, ok := q.QueuedCost(tail.UUID, 0, 0)
	if !ok {
		t.Fatal("QueuedCost missed job")
	}
	want := Cost((7 * time.Hour).Seconds())
	if cost != want {
		t.Fatalf("QueuedCost = %v, want %v", cost, want)
	}
}

func TestNALAccountsForReservations(t *testing.T) {
	q := mustQueue(t, EDF, 1)
	// Reserved deadline job: cannot start before 4h, deadline 4h30m,
	// ERT 1h → inevitably 30m late.
	j := deadlineJob(time.Hour, 4*time.Hour+30*time.Minute)
	j.EarliestStart = 4 * time.Hour
	q.Enqueue(j, 0)
	cost := q.nal(nil, 0, 0)
	want := Cost((30 * time.Minute).Seconds())
	if diff := float64(cost - want); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("NAL = %v, want %v", cost, want)
	}
}

func TestPopWithoutReservationsUnchanged(t *testing.T) {
	// Regression guard: plain jobs keep the original pop semantics at
	// any instant.
	q := mustQueue(t, SJF, 1)
	a, b := batchJob(2*time.Hour), batchJob(time.Hour)
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	if got := q.Pop(123 * time.Hour); got != b {
		t.Fatal("SJF order broken for unreserved jobs")
	}
	if got := q.Pop(0); got != a {
		t.Fatal("second pop wrong")
	}
}

func TestCandidateSelectionPolicies(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	old := batchJob(time.Hour)
	old.SubmittedAt = 0
	newJ := batchJob(30 * time.Minute)
	newJ.SubmittedAt = time.Hour
	q.Enqueue(old, 2*time.Hour)
	q.Enqueue(newJ, 2*time.Hour)

	if got := q.RescheduleCandidatesBy(SelectPaper, 1, 2*time.Hour, 0); got[0] != old {
		t.Fatal("paper selection should pick the longest-waiting job")
	}
	if got := q.RescheduleCandidatesBy(SelectNewest, 1, 2*time.Hour, 0); got[0] != newJ {
		t.Fatal("newest selection should pick the most recent job")
	}
	// Costliest under FCFS: the job completing last (old runs first, so
	// newJ has the higher ETTC... old ERT 1h → newJ completes at 1h30m;
	// old completes at 1h → newJ is costliest).
	if got := q.RescheduleCandidatesBy(SelectCostliest, 1, 2*time.Hour, 0); got[0] != newJ {
		t.Fatal("costliest selection should pick the latest-completing job")
	}
	if got := q.RescheduleCandidatesBy(SelectNewest, 0, 0, 0); got != nil {
		t.Fatal("n=0 should yield nil")
	}
}

func TestCandidateSelectionStrings(t *testing.T) {
	tests := []struct {
		give CandidateSelection
		want string
	}{
		{SelectPaper, "paper"},
		{SelectNewest, "newest"},
		{SelectCostliest, "costliest"},
		{CandidateSelection(9), "CandidateSelection(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if CandidateSelection(9).Valid() {
		t.Fatal("invalid selection accepted")
	}
}
