package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

var testReq = resource.Requirements{
	Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
}

var uuidRNG = rand.New(rand.NewSource(99))

func batchJob(ert time.Duration) *job.Job {
	return job.New(job.Profile{
		UUID: job.NewUUID(uuidRNG), Req: testReq, ERT: ert, Class: job.ClassBatch,
	})
}

func deadlineJob(ert, deadline time.Duration) *job.Job {
	return job.New(job.Profile{
		UUID: job.NewUUID(uuidRNG), Req: testReq, ERT: ert,
		Class: job.ClassDeadline, Deadline: deadline,
	})
}

func mustQueue(t *testing.T, p Policy, perf float64) *Queue {
	t.Helper()
	q, err := New(p, perf)
	if err != nil {
		t.Fatalf("New(%v, %v): %v", p, perf, err)
	}
	return q
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Policy(0), 1); err == nil {
		t.Fatal("New accepted invalid policy")
	}
	if _, err := New(FCFS, 0); err == nil {
		t.Fatal("New accepted zero performance index")
	}
	if _, err := New(FCFS, -1); err == nil {
		t.Fatal("New accepted negative performance index")
	}
}

func TestPolicyClass(t *testing.T) {
	tests := []struct {
		policy Policy
		want   job.Class
	}{
		{FCFS, job.ClassBatch},
		{SJF, job.ClassBatch},
		{LJF, job.ClassBatch},
		{Priority, job.ClassBatch},
		{EDF, job.ClassDeadline},
	}
	for _, tt := range tests {
		if got := tt.policy.Class(); got != tt.want {
			t.Errorf("%v.Class() = %v, want %v", tt.policy, got, tt.want)
		}
	}
}

func TestFCFSOrder(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	a, b, c := batchJob(3*time.Hour), batchJob(time.Hour), batchJob(2*time.Hour)
	q.Enqueue(a, 0)
	q.Enqueue(b, time.Second)
	q.Enqueue(c, 2*time.Second)
	for i, want := range []*job.Job{a, b, c} {
		got := q.Pop(0)
		if got != want {
			t.Fatalf("pop %d = %v, want %v", i, got.UUID.Short(), want.UUID.Short())
		}
	}
	if q.Pop(0) != nil {
		t.Fatal("Next on empty queue should be nil")
	}
}

func TestSJFOrder(t *testing.T) {
	q := mustQueue(t, SJF, 1)
	long, short, mid := batchJob(3*time.Hour), batchJob(time.Hour), batchJob(2*time.Hour)
	q.Enqueue(long, 0)
	q.Enqueue(short, 0)
	q.Enqueue(mid, 0)
	for i, want := range []*job.Job{short, mid, long} {
		if got := q.Pop(0); got != want {
			t.Fatalf("pop %d wrong job (got ERT %v, want %v)", i, got.ERT, want.ERT)
		}
	}
}

func TestSJFTieBreaksFIFO(t *testing.T) {
	q := mustQueue(t, SJF, 1)
	first, second := batchJob(time.Hour), batchJob(time.Hour)
	q.Enqueue(first, 0)
	q.Enqueue(second, 0)
	if got := q.Pop(0); got != first {
		t.Fatal("SJF tie should preserve enqueue order")
	}
}

func TestLJFOrder(t *testing.T) {
	q := mustQueue(t, LJF, 1)
	long, short := batchJob(3*time.Hour), batchJob(time.Hour)
	q.Enqueue(short, 0)
	q.Enqueue(long, 0)
	if got := q.Pop(0); got != long {
		t.Fatal("LJF should run the longest job first")
	}
}

func TestEDFOrder(t *testing.T) {
	q := mustQueue(t, EDF, 1)
	late, soon := deadlineJob(time.Hour, 10*time.Hour), deadlineJob(time.Hour, 2*time.Hour)
	q.Enqueue(late, 0)
	q.Enqueue(soon, 0)
	if got := q.Pop(0); got != soon {
		t.Fatal("EDF should run the earliest deadline first")
	}
}

func TestPriorityOrder(t *testing.T) {
	q := mustQueue(t, Priority, 1)
	lo, hi := batchJob(time.Hour), batchJob(time.Hour)
	lo.Priority = 1
	hi.Priority = 5
	q.Enqueue(lo, 0)
	q.Enqueue(hi, 0)
	if got := q.Pop(0); got != hi {
		t.Fatal("Priority should run the highest priority first")
	}
}

func TestRemoveAndGet(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	a, b := batchJob(time.Hour), batchJob(time.Hour)
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	if _, ok := q.Get(a.UUID); !ok {
		t.Fatal("Get missed a queued job")
	}
	if !q.Remove(a.UUID) {
		t.Fatal("Remove failed for queued job")
	}
	if q.Remove(a.UUID) {
		t.Fatal("Remove succeeded twice for the same job")
	}
	if _, ok := q.Get(a.UUID); ok {
		t.Fatal("Get found a removed job")
	}
	if q.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", q.Len())
	}
}

func TestEnqueueSetsState(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	j := batchJob(time.Hour)
	q.Enqueue(j, 42*time.Second)
	if j.State != job.StateQueued {
		t.Fatalf("state = %v, want queued", j.State)
	}
	if j.EnqueuedAt != 42*time.Second {
		t.Fatalf("EnqueuedAt = %v, want 42s", j.EnqueuedAt)
	}
}

func TestETTCEmptyQueue(t *testing.T) {
	q := mustQueue(t, FCFS, 2) // twice as fast as baseline
	p := batchJob(2 * time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost(time.Hour.Seconds()) // 2h / perf 2
	if cost != want {
		t.Fatalf("ETTC = %v, want %v", cost, want)
	}
}

func TestETTCIncludesRunningRemaining(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	p := batchJob(time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost((90 * time.Minute).Seconds())
	if cost != want {
		t.Fatalf("ETTC = %v, want %v", cost, want)
	}
}

func TestETTCFCFSCountsWholeQueue(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	q.Enqueue(batchJob(time.Hour), 0)
	q.Enqueue(batchJob(2*time.Hour), 0)
	p := batchJob(time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost((4 * time.Hour).Seconds())
	if cost != want {
		t.Fatalf("ETTC = %v, want %v", cost, want)
	}
}

func TestETTCSJFCountsOnlyShorterJobs(t *testing.T) {
	q := mustQueue(t, SJF, 1)
	q.Enqueue(batchJob(time.Hour), 0)   // ahead of probe
	q.Enqueue(batchJob(3*time.Hour), 0) // behind probe
	p := batchJob(2 * time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost((3 * time.Hour).Seconds()) // 1h ahead + own 2h
	if cost != want {
		t.Fatalf("ETTC = %v, want %v", cost, want)
	}
}

func TestETTCSJFTieGoesToIncumbent(t *testing.T) {
	q := mustQueue(t, SJF, 1)
	q.Enqueue(batchJob(2*time.Hour), 0)
	p := batchJob(2 * time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost((4 * time.Hour).Seconds()) // incumbent runs first on tie
	if cost != want {
		t.Fatalf("ETTC = %v, want %v", cost, want)
	}
}

func TestOfferCostRejectsWrongClass(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	p := deadlineJob(time.Hour, 5*time.Hour).Profile
	if _, err := q.OfferCost(p, 0, 0); err != ErrWrongClass {
		t.Fatalf("err = %v, want ErrWrongClass", err)
	}
	dq := mustQueue(t, EDF, 1)
	bp := batchJob(time.Hour).Profile
	if _, err := dq.OfferCost(bp, 0, 0); err != ErrWrongClass {
		t.Fatalf("err = %v, want ErrWrongClass", err)
	}
}

func TestNALAllOnTimeIsNegativeSlack(t *testing.T) {
	q := mustQueue(t, EDF, 1)
	// One queued job: ERT 1h, deadline 4h. Probe: ERT 1h, deadline 10h.
	q.Enqueue(deadlineJob(time.Hour, 4*time.Hour), 0)
	p := deadlineJob(time.Hour, 10*time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// EDF order: queued (ETC 1h, γ 3h), probe (ETC 2h, γ 8h) → −(3h+8h).
	want := -Cost((11 * time.Hour).Seconds())
	if math.Abs(float64(cost-want)) > 1e-6 {
		t.Fatalf("NAL = %v, want %v", cost, want)
	}
}

func TestNALLateJobsAccumulateLateness(t *testing.T) {
	q := mustQueue(t, EDF, 1)
	q.Enqueue(deadlineJob(2*time.Hour, time.Hour), 0) // will be 1h late
	p := deadlineJob(time.Hour, 10*time.Hour).Profile
	cost, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Queued job: ETC 2h, γ −1h (late, δ=1 → +1h). Probe: ETC 3h, γ 7h
	// (on time but queue late, δ=0). Total +1h.
	want := Cost(time.Hour.Seconds())
	if math.Abs(float64(cost-want)) > 1e-6 {
		t.Fatalf("NAL = %v, want %v", cost, want)
	}
}

func TestNALUsesAbsoluteTime(t *testing.T) {
	q := mustQueue(t, EDF, 1)
	p := deadlineJob(time.Hour, 10*time.Hour).Profile
	early, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := q.OfferCost(p, 5*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if late <= early {
		t.Fatalf("NAL at t=5h (%v) should exceed NAL at t=0 (%v): less slack remains", late, early)
	}
}

func TestQueuedCostBatch(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	a, b := batchJob(time.Hour), batchJob(2*time.Hour)
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	cost, ok := q.QueuedCost(b.UUID, 0, 30*time.Minute)
	if !ok {
		t.Fatal("QueuedCost missed queued job")
	}
	want := Cost((3*time.Hour + 30*time.Minute).Seconds())
	if cost != want {
		t.Fatalf("QueuedCost = %v, want %v", cost, want)
	}
	if _, ok := q.QueuedCost(job.UUID("missing"), 0, 0); ok {
		t.Fatal("QueuedCost found a job that is not queued")
	}
}

func TestQueuedCostMatchesOfferForHead(t *testing.T) {
	// A job's queued ETTC right after being accepted into an empty queue
	// must equal the offer cost that won it.
	q := mustQueue(t, SJF, 1.5)
	p := batchJob(90 * time.Minute).Profile
	offer, err := q.OfferCost(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := job.New(p)
	q.Enqueue(j, 0)
	queued, ok := q.QueuedCost(j.UUID, 0, 0)
	if !ok {
		t.Fatal("job vanished")
	}
	if math.Abs(float64(offer-queued)) > 1e-9 {
		t.Fatalf("offer %v != queued %v", offer, queued)
	}
}

func TestRescheduleCandidatesBatchLongestWait(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	old, mid, young := batchJob(time.Hour), batchJob(time.Hour), batchJob(time.Hour)
	old.SubmittedAt = 0
	mid.SubmittedAt = time.Minute
	young.SubmittedAt = time.Hour
	q.Enqueue(young, 2*time.Hour)
	q.Enqueue(old, 2*time.Hour)
	q.Enqueue(mid, 2*time.Hour)
	got := q.RescheduleCandidates(2, 2*time.Hour, 0)
	if len(got) != 2 || got[0] != old || got[1] != mid {
		t.Fatalf("candidates = %v, want oldest submissions first", got)
	}
}

func TestRescheduleCandidatesDeadlineLeastSlack(t *testing.T) {
	q := mustQueue(t, EDF, 1)
	tight := deadlineJob(time.Hour, 90*time.Minute)
	loose := deadlineJob(time.Hour, 10*time.Hour)
	q.Enqueue(loose, 0)
	q.Enqueue(tight, 0)
	got := q.RescheduleCandidates(1, 0, 0)
	if len(got) != 1 || got[0] != tight {
		t.Fatal("deadline candidates should prefer least slack")
	}
}

func TestRescheduleCandidatesBounds(t *testing.T) {
	q := mustQueue(t, FCFS, 1)
	if got := q.RescheduleCandidates(3, 0, 0); got != nil {
		t.Fatal("candidates from empty queue should be nil")
	}
	q.Enqueue(batchJob(time.Hour), 0)
	if got := q.RescheduleCandidates(0, 0, 0); got != nil {
		t.Fatal("n=0 should yield nil")
	}
	if got := q.RescheduleCandidates(5, 0, 0); len(got) != 1 {
		t.Fatalf("candidates = %d jobs, want 1", len(got))
	}
}

// Property: ETTC is monotone — adding a job to the queue never decreases
// the offer cost of a subsequent probe.
func TestPropertyETTCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(erts []uint8, probeERT uint8, policyPick bool) bool {
		policy := FCFS
		if policyPick {
			policy = SJF
		}
		q, err := New(policy, 1.3)
		if err != nil {
			return false
		}
		probe := batchJob(time.Duration(int(probeERT)%180+60) * time.Minute).Profile
		prev, err := q.OfferCost(probe, 0, 0)
		if err != nil {
			return false
		}
		for _, e := range erts {
			q.Enqueue(batchJob(time.Duration(int(e)%180+60)*time.Minute), 0)
			cost, err := q.OfferCost(probe, 0, 0)
			if err != nil {
				return false
			}
			if cost < prev {
				return false
			}
			prev = cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: every enqueue/next sequence conserves jobs — whatever goes in
// comes out exactly once, regardless of policy.
func TestPropertyQueueConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	policies := []Policy{FCFS, SJF, LJF, Priority, EDF}
	f := func(n uint8, policyIdx uint8) bool {
		policy := policies[int(policyIdx)%len(policies)]
		q, err := New(policy, 1)
		if err != nil {
			return false
		}
		count := int(n)%30 + 1
		in := make(map[job.UUID]bool, count)
		for i := 0; i < count; i++ {
			var j *job.Job
			if policy == EDF {
				j = deadlineJob(time.Hour, time.Duration(rng.Intn(100)+1)*time.Hour)
			} else {
				j = batchJob(time.Duration(rng.Intn(180)+60) * time.Minute)
				j.Priority = rng.Intn(5)
			}
			in[j.UUID] = true
			q.Enqueue(j, 0)
		}
		out := 0
		for j := q.Pop(0); j != nil; j = q.Pop(0) {
			if !in[j.UUID] {
				return false
			}
			delete(in, j.UUID)
			out++
		}
		return out == count && len(in) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: NAL is bounded — all on-time means cost < 0; any late job means
// cost > 0 (never exactly the confusing middle for non-empty queues).
func TestPropertyNALSign(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(n uint8) bool {
		q, err := New(EDF, 1)
		if err != nil {
			return false
		}
		count := int(n)%10 + 1
		for i := 0; i < count; i++ {
			q.Enqueue(deadlineJob(time.Hour, time.Duration(rng.Intn(48)+1)*time.Hour), 0)
		}
		probe := deadlineJob(time.Hour, time.Duration(rng.Intn(48)+1)*time.Hour).Profile
		cost, err := q.OfferCost(probe, 0, 0)
		if err != nil {
			return false
		}
		// Recompute lateness directly to classify.
		jobs := q.Jobs()
		all := append(jobs, job.New(probe))
		// EDF order by deadline.
		for i := 0; i < len(all); i++ {
			for k := i + 1; k < len(all); k++ {
				if all[k].Deadline < all[i].Deadline {
					all[i], all[k] = all[k], all[i]
				}
			}
		}
		var cum time.Duration
		anyLate := false
		for _, j := range all {
			cum += j.ERT
			if j.Deadline < cum {
				anyLate = true
			}
		}
		if anyLate {
			return cost > 0
		}
		return cost <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: cost functions depend only on the set of queued jobs, never on
// insertion order (determinism across reschedule arrival races).
func TestPropertyCostPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64, useEDF bool) bool {
		jobRng := rand.New(rand.NewSource(seed))
		n := jobRng.Intn(8) + 2
		var jobs []*job.Job
		for i := 0; i < n; i++ {
			if useEDF {
				// Distinct deadlines: with ties, EDF order (and hence
				// each job's ETC) legitimately depends on arrival
				// order via the FIFO tiebreak.
				deadline := time.Duration(i+1)*2*time.Hour + time.Duration(jobRng.Intn(60))*time.Minute
				jobs = append(jobs, deadlineJob(
					time.Duration(jobRng.Intn(180)+30)*time.Minute, deadline))
			} else {
				jobs = append(jobs, batchJob(time.Duration(jobRng.Intn(180)+30)*time.Minute))
			}
		}
		policy := SJF
		var probe job.Profile
		if useEDF {
			policy = EDF
			probe = deadlineJob(time.Hour, 24*time.Hour).Profile
		} else {
			probe = batchJob(time.Hour).Profile
		}
		build := func(order []int) Cost {
			q, err := New(policy, 1.4)
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range order {
				q.Enqueue(jobs[idx], 0)
			}
			cost, err := q.OfferCost(probe, time.Hour, 30*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			return cost
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		base := build(order)
		rng.Shuffle(n, func(i, k int) { order[i], order[k] = order[k], order[i] })
		shuffled := build(order)
		diff := float64(base - shuffled)
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePolicy("edf"); err != nil || got != EDF {
		t.Fatalf("case-insensitive parse broken: %v %v", got, err)
	}
	if _, err := ParsePolicy("fifo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
