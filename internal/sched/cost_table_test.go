package sched

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
)

// These tables pin the two §III-C cost functions to hand-computed values.
// Every quantity is a whole number of seconds at small magnitude, so the
// float64 expectations are exact and the comparisons need no tolerance.

func reservedBatchJob(ert, earliestStart time.Duration) *job.Job {
	j := batchJob(ert)
	j.EarliestStart = earliestStart
	return j
}

func reservedDeadlineJob(ert, deadline, earliestStart time.Duration) *job.Job {
	j := deadlineJob(ert, deadline)
	j.EarliestStart = earliestStart
	return j
}

// TestETTCHandComputed checks OfferCost for batch queues: ETTC is the
// relative instant the probe job would finish, i.e. the running job's
// remaining time, plus every incumbent scheduled ahead under the policy
// (scaled by the performance index, delayed by reservations), plus the
// probe's own scaled estimate.
func TestETTCHandComputed(t *testing.T) {
	tests := []struct {
		name    string
		policy  Policy
		perf    float64
		running time.Duration
		queued  []*job.Job
		probe   *job.Job
		now     time.Duration
		want    Cost
	}{
		{
			name:   "idle empty queue is the bare estimate",
			policy: FCFS, perf: 1.0,
			probe: batchJob(600 * time.Second),
			want:  600,
		},
		{
			name:   "performance index divides the estimate",
			policy: FCFS, perf: 1.5,
			probe: batchJob(600 * time.Second),
			want:  400, // 600 / 1.5
		},
		{
			name:   "running job delays the probe",
			policy: FCFS, perf: 1.0,
			running: 120 * time.Second,
			probe:   batchJob(600 * time.Second),
			want:    720, // 120 + 600
		},
		{
			name:   "FCFS queues the probe behind every incumbent",
			policy: FCFS, perf: 1.0,
			running: 60 * time.Second,
			queued:  []*job.Job{batchJob(300 * time.Second), batchJob(600 * time.Second)},
			probe:   batchJob(240 * time.Second),
			want:    1200, // 60 + 300 + 600 + 240
		},
		{
			name:   "SJF probe jumps longer incumbents",
			policy: SJF, perf: 1.0,
			queued: []*job.Job{batchJob(300 * time.Second), batchJob(600 * time.Second)},
			probe:  batchJob(450 * time.Second),
			want:   750, // 300 + 450; the 600 s incumbent yields
		},
		{
			name:   "SJF ties go to the incumbent",
			policy: SJF, perf: 1.0,
			queued: []*job.Job{batchJob(450 * time.Second)},
			probe:  batchJob(450 * time.Second),
			want:   900, // 450 + 450
		},
		{
			name:   "SJF orders by raw ERT but executes scaled",
			policy: SJF, perf: 1.5,
			queued: []*job.Job{batchJob(300 * time.Second)},
			probe:  batchJob(450 * time.Second),
			want:   500, // 300/1.5 + 450/1.5
		},
		{
			name:   "probe's own reservation floors its start",
			policy: FCFS, perf: 1.0,
			now:   100 * time.Second,
			probe: reservedBatchJob(300*time.Second, 1000*time.Second),
			want:  1200, // waits (1000-100) then runs 300
		},
		{
			name:   "reserved incumbent holds the probe back (no backfill in cost)",
			policy: FCFS, perf: 1.0,
			queued: []*job.Job{reservedBatchJob(100*time.Second, 500*time.Second)},
			probe:  batchJob(50 * time.Second),
			want:   650, // incumbent waits 500, runs 100; probe runs 50
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := mustQueue(t, tc.policy, tc.perf)
			for _, j := range tc.queued {
				q.Enqueue(j, tc.now)
			}
			got, err := q.OfferCost(tc.probe.Profile, tc.now, tc.running)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("OfferCost = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestQueuedCostHandComputed checks the in-queue variant: each queued job's
// ETTC counts the running remainder plus everything ordered ahead of it.
func TestQueuedCostHandComputed(t *testing.T) {
	q := mustQueue(t, FCFS, 1.0)
	a := batchJob(300 * time.Second)
	b := batchJob(600 * time.Second)
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	running := 60 * time.Second

	if got, ok := q.QueuedCost(a.UUID, 0, running); !ok || got != 360 {
		t.Fatalf("QueuedCost(head) = %v, %v; want 360", got, ok)
	}
	if got, ok := q.QueuedCost(b.UUID, 0, running); !ok || got != 960 {
		t.Fatalf("QueuedCost(tail) = %v, %v; want 960", got, ok)
	}
	if _, ok := q.QueuedCost(batchJob(time.Second).UUID, 0, running); ok {
		t.Fatal("QueuedCost reported a job that is not queued")
	}
}

// TestNALHandComputed checks the deadline cost: NAL = Σ δ·|γ| with
// γ = deadline − ETC under EDF order, δ = −1 for everyone when the whole
// queue is on time, else 0 for on-time jobs and +1 for late ones. Lower is
// better: all-on-time queues are negative, any lateness flips the sign.
func TestNALHandComputed(t *testing.T) {
	tests := []struct {
		name    string
		perf    float64
		running time.Duration
		queued  []*job.Job
		probe   *job.Job // nil evaluates the queue as it stands
		want    Cost
	}{
		{
			name: "all on time accumulates negative slack",
			perf: 1.0,
			queued: []*job.Job{
				deadlineJob(100*time.Second, 400*time.Second),  // ETC 100, γ 300
				deadlineJob(200*time.Second, 1000*time.Second), // ETC 300, γ 700
			},
			want: -1000,
		},
		{
			name: "one late job silences on-time slack",
			perf: 1.0,
			queued: []*job.Job{
				deadlineJob(300*time.Second, 200*time.Second),  // ETC 300, γ -100: late
				deadlineJob(100*time.Second, 1000*time.Second), // ETC 400, γ 600: δ = 0
			},
			want: 100, // |γ| of the late job only
		},
		{
			name: "zero slack still counts as on time",
			perf: 1.0,
			queued: []*job.Job{
				deadlineJob(300*time.Second, 300*time.Second),  // γ exactly 0
				deadlineJob(100*time.Second, 1000*time.Second), // ETC 400, γ 600
			},
			want: -600, // γ = 0 contributes nothing but does not flip δ
		},
		{
			name: "offered probe is inserted in EDF order",
			perf: 1.0,
			queued: []*job.Job{
				deadlineJob(200*time.Second, 1000*time.Second), // runs second: ETC 300, γ 700
			},
			probe: deadlineJob(100*time.Second, 400*time.Second), // runs first: ETC 100, γ 300
			want:  -1000,
		},
		{
			name:    "running remainder delays the whole schedule",
			perf:    1.0,
			running: 100 * time.Second,
			queued: []*job.Job{
				deadlineJob(100*time.Second, 150*time.Second), // ETC 200, γ -50
			},
			want: 50,
		},
		{
			name: "performance index scales estimated completion",
			perf: 1.25,
			queued: []*job.Job{
				deadlineJob(500*time.Second, 450*time.Second), // ETC 400, γ 50
			},
			want: -50,
		},
		{
			name: "reservation floors the start before the deadline check",
			perf: 1.0,
			queued: []*job.Job{
				reservedDeadlineJob(100*time.Second, 400*time.Second, 200*time.Second), // ETC 300, γ 100
			},
			want: -100,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := mustQueue(t, EDF, tc.perf)
			for _, j := range tc.queued {
				q.Enqueue(j, 0)
			}
			var got Cost
			if tc.probe != nil {
				c, err := q.OfferCost(tc.probe.Profile, 0, tc.running)
				if err != nil {
					t.Fatal(err)
				}
				got = c
			} else {
				c, ok := q.QueuedCost(tc.queued[0].UUID, 0, tc.running)
				if !ok {
					t.Fatal("QueuedCost lost a queued job")
				}
				got = c
			}
			if got != tc.want {
				t.Fatalf("NAL = %v, want %v", got, tc.want)
			}
		})
	}
}
