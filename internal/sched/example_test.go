package sched_test

import (
	"fmt"
	"strings"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
)

func exampleJob(name string, ert, earliestStart time.Duration) *job.Job {
	uuid := job.UUID(name + strings.Repeat("0", 32-len(name)))
	return job.New(job.Profile{
		UUID: uuid,
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:           ert,
		Class:         job.ClassBatch,
		EarliestStart: earliestStart,
	})
}

// A shortest-job-first queue orders by estimated running time; the ETTC
// cost of a prospective job counts only the work scheduled ahead of it.
func ExampleQueue_OfferCost() {
	q, _ := sched.New(sched.SJF, 1.0)
	q.Enqueue(exampleJob("short", time.Hour, 0), 0)
	q.Enqueue(exampleJob("long", 3*time.Hour, 0), 0)

	probe := exampleJob("probe", 2*time.Hour, 0).Profile
	cost, _ := q.OfferCost(probe, 0, 0)
	// 1h (shorter job ahead) + 2h (the probe itself) = 3h.
	fmt.Printf("ETTC: %v\n", time.Duration(cost)*time.Second)
	// Output:
	// ETTC: 3h0m0s
}

// EASY backfill: a reserved head blocks the queue, but a job short enough
// to finish before the reservation runs in the idle window.
func ExampleQueue_Peek() {
	q, _ := sched.New(sched.FCFS, 1.0)
	q.Enqueue(exampleJob("reserved", time.Hour, 3*time.Hour), 0)
	q.Enqueue(exampleJob("filler", time.Hour, 0), 0)

	now := time.Duration(0)
	next := q.Peek(now)
	fmt.Println("runs first:", next.UUID.Short())
	// Output:
	// runs first: filler00
}
