// Package wal is the durable scheduler journal: a write-ahead log of every
// scheduler state transition a node performs, with periodic snapshots and
// compaction. Replaying the snapshot plus the journal tail reconstructs the
// node's recoverable state — local queue, initiator tracking tables, and
// unacknowledged outbound assignments — turning the fail-stop node of the
// base protocol into a fail-recover one.
//
// The package is storage-agnostic: the deterministic simulator journals to
// an in-memory store, the live daemon to fsync-policied files. Records and
// snapshots share one CRC-framed wire format; a torn or bit-flipped tail
// always yields the clean prefix, never a decoding error or corrupt state.
package wal

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
)

// RecordType names one journaled scheduler state transition.
type RecordType uint8

// Record types. The set mirrors the node's durable state machine: queue
// membership, the execution slot, initiator-side failsafe tracking, and the
// ASSIGN/ACK handshake. Discovery rounds are deliberately not journaled —
// they die with the process in the base protocol too, and the failsafe
// watchdog (itself journaled) is what recovers their jobs.
const (
	// RecEnqueue: a job entered the local queue (Profile, Peer = initiator).
	RecEnqueue RecordType = iota + 1

	// RecDequeue: a job left this node without completing here (a
	// rescheduling handoff, a multi-assign CANCEL, or an initiator-side
	// revocation of an execution already in flight).
	RecDequeue

	// RecStart: the job began executing (Profile, Peer = initiator).
	RecStart

	// RecComplete: the running job finished.
	RecComplete

	// RecAssignSent: an ASSIGN went out and awaits acknowledgement
	// (Profile, Peer = assignee, Init = stamped initiator). Re-journaled
	// on every retransmission with the updated attempt count.
	RecAssignSent

	// RecAssignClosed: the handshake closed (ACK arrived, or retries were
	// exhausted and the fallback ran).
	RecAssignClosed

	// RecWatchdog: the failsafe watchdog was armed or re-armed for a
	// delegated job (Profile, Peer = assignee, Resub = resubmissions so
	// far, Expect = completion horizon).
	RecWatchdog

	// RecNotify: a NOTIFY(queued) from the assignee was observed; the
	// tracked assignee moved to Peer and the watchdog re-armed.
	RecNotify

	// RecTrackDone: failsafe tracking for the job closed (completion
	// observed, or the watchdog gave the job up).
	RecTrackDone

	// RecNotifySent: a completion NOTIFY went to the initiator and awaits
	// acknowledgement (Profile, Peer = initiator). The assignee resends it
	// with backoff until NOTIFY(ack) arrives, and recovery resends it after
	// a crash — a lost completion notify must not leave the initiator's
	// watchdog to rerun a job whose completion was already observable.
	RecNotifySent

	// RecNotifyAck: the initiator acknowledged the completion NOTIFY (or
	// was confirmed dead); the resend loop closed.
	RecNotifyAck
)

// Valid reports whether t is a known record type.
func (t RecordType) Valid() bool {
	return t >= RecEnqueue && t <= RecNotifyAck
}

// Record is one journaled state transition. Every record carries the node's
// flood-sequence and span counters at append time, so replay restores them
// and a recovered node never reuses a pre-crash flood key (which peers would
// dedup-suppress) or span identifier.
type Record struct {
	Type RecordType    `json:"t"`
	At   time.Duration `json:"at"`

	UUID    job.UUID     `json:"uuid,omitempty"`
	Profile *job.Profile `json:"profile,omitempty"`

	// Peer is the record's counterpart node: the initiator for enqueue and
	// start records, the assignee for assignment and tracking records.
	Peer overlay.NodeID `json:"peer,omitempty"`

	// Init is the initiator address stamped on an outbound ASSIGN (differs
	// from the sender on a rescheduling handoff).
	Init overlay.NodeID `json:"init,omitempty"`

	// Resub counts failsafe resubmissions; Attempts counts ASSIGN
	// retransmissions; Expect is the tracked completion horizon.
	Resub    int           `json:"resub,omitempty"`
	Attempts int           `json:"attempts,omitempty"`
	Expect   time.Duration `json:"expect,omitempty"`

	// Reschedule marks an ASSIGN that hands off an already-queued job.
	Reschedule bool `json:"resched,omitempty"`

	// Span is the trace span under which the transition was emitted, so a
	// recovered job's spans link back into the pre-crash causal tree.
	Span uint64 `json:"span,omitempty"`

	// Seq and SpanSeq snapshot the node's counters at append time.
	Seq     uint64 `json:"seq,omitempty"`
	SpanSeq uint64 `json:"spanseq,omitempty"`
}

// Validate reports the first structural problem with the record.
func (r Record) Validate() error {
	if !r.Type.Valid() {
		return fmt.Errorf("wal record: unknown type %d", r.Type)
	}
	if r.At < 0 {
		return fmt.Errorf("wal record: negative timestamp %v", r.At)
	}
	return nil
}

// QueuedJob is one queued job in a recovery state.
type QueuedJob struct {
	Profile   job.Profile    `json:"profile"`
	Initiator overlay.NodeID `json:"initiator"`
	Span      uint64         `json:"span,omitempty"`
}

// TrackedJob is one initiator-side failsafe tracking entry.
type TrackedJob struct {
	Profile  job.Profile    `json:"profile"`
	Assignee overlay.NodeID `json:"assignee"`
	Resub    int            `json:"resub,omitempty"`
	Expect   time.Duration  `json:"expect,omitempty"`
	Span     uint64         `json:"span,omitempty"`
}

// OutAssign is one unacknowledged outbound ASSIGN.
type OutAssign struct {
	Profile    job.Profile    `json:"profile"`
	To         overlay.NodeID `json:"to"`
	Initiator  overlay.NodeID `json:"initiator"`
	Reschedule bool           `json:"resched,omitempty"`
	Attempts   int            `json:"attempts,omitempty"`
	Span       uint64         `json:"span,omitempty"`
}

// RunningJob is the job occupying the execution slot. A crash loses the
// execution in flight; recovery re-enqueues the job (it never completed).
type RunningJob struct {
	Profile   job.Profile    `json:"profile"`
	Initiator overlay.NodeID `json:"initiator"`
	Span      uint64         `json:"span,omitempty"`
}

// PendingNotify is one completion NOTIFY awaiting the initiator's
// acknowledgement. Recovery resends it: the job completed and its
// completion was observable, so the initiator must learn of it (or ack as
// an amnesiac) rather than resubmit a duplicate.
type PendingNotify struct {
	Profile   job.Profile    `json:"profile"`
	Initiator overlay.NodeID `json:"initiator"`
	Span      uint64         `json:"span,omitempty"`
}

// State is a node's full recoverable scheduler state: what a snapshot
// persists, and what Replay reconstructs from a snapshot plus the journal
// tail. Slices are sorted by job UUID, so equal states encode identically
// and Hash is a sound determinism check.
type State struct {
	Node overlay.NodeID `json:"node"`

	// At is the state's timestamp (snapshot instant, or the last replayed
	// record's).
	At time.Duration `json:"at"`

	// Seq and SpanSeq are the node's flood-sequence and span counters.
	Seq     uint64 `json:"seq"`
	SpanSeq uint64 `json:"spanseq"`

	Queued        []QueuedJob     `json:"queued,omitempty"`
	Tracked       []TrackedJob    `json:"tracked,omitempty"`
	OutAssigns    []OutAssign     `json:"outassigns,omitempty"`
	PendingNotify []PendingNotify `json:"pendingnotify,omitempty"`
	Running       *RunningJob     `json:"running,omitempty"`
}

// Jobs reports how many distinct job-state entries the state holds.
func (s *State) Jobs() int {
	n := len(s.Queued) + len(s.Tracked) + len(s.OutAssigns) + len(s.PendingNotify)
	if s.Running != nil {
		n++
	}
	return n
}

// Hash is a deterministic digest of the state (FNV-64a over the canonical
// JSON encoding). Replaying the same journal twice must produce the same
// hash — the CI determinism gate.
func (s *State) Hash() uint64 {
	b, err := json.Marshal(s)
	if err != nil {
		// State is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("wal: state hash: %v", err))
	}
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// Replay folds journal records over a base state (nil = empty) and returns
// the resulting state with canonically sorted slices. Replay is pure and
// total: records referencing unknown jobs are ignored (the state they
// touch was compacted into an older snapshot that has since been replaced),
// so a lost or corrupt snapshot degrades to partial recovery, never to a
// corrupt queue.
func Replay(base *State, recs []Record) *State {
	out := &State{}
	queued := make(map[job.UUID]QueuedJob)
	tracked := make(map[job.UUID]TrackedJob)
	outAssigns := make(map[job.UUID]OutAssign)
	pendingNotify := make(map[job.UUID]PendingNotify)
	var running *RunningJob

	if base != nil {
		out.Node = base.Node
		out.At = base.At
		out.Seq = base.Seq
		out.SpanSeq = base.SpanSeq
		for _, q := range base.Queued {
			queued[q.Profile.UUID] = q
		}
		for _, t := range base.Tracked {
			tracked[t.Profile.UUID] = t
		}
		for _, oa := range base.OutAssigns {
			outAssigns[oa.Profile.UUID] = oa
		}
		for _, pn := range base.PendingNotify {
			pendingNotify[pn.Profile.UUID] = pn
		}
		if base.Running != nil {
			r := *base.Running
			running = &r
		}
	}

	for _, rec := range recs {
		if rec.Validate() != nil {
			continue
		}
		if rec.At > out.At {
			out.At = rec.At
		}
		if rec.Seq > out.Seq {
			out.Seq = rec.Seq
		}
		if rec.SpanSeq > out.SpanSeq {
			out.SpanSeq = rec.SpanSeq
		}
		switch rec.Type {
		case RecEnqueue:
			if rec.Profile == nil {
				continue
			}
			queued[rec.UUID] = QueuedJob{Profile: *rec.Profile, Initiator: rec.Peer, Span: rec.Span}
		case RecDequeue:
			delete(queued, rec.UUID)
			// A revoked execution in flight (initiator-side CANCEL of a
			// stale copy) journals RecDequeue too: the slot is clear.
			if running != nil && running.Profile.UUID == rec.UUID {
				running = nil
			}
		case RecStart:
			delete(queued, rec.UUID)
			if rec.Profile == nil {
				continue
			}
			running = &RunningJob{Profile: *rec.Profile, Initiator: rec.Peer, Span: rec.Span}
		case RecComplete:
			if running != nil && running.Profile.UUID == rec.UUID {
				running = nil
			}
		case RecAssignSent:
			if rec.Profile == nil {
				continue
			}
			outAssigns[rec.UUID] = OutAssign{
				Profile: *rec.Profile, To: rec.Peer, Initiator: rec.Init,
				Reschedule: rec.Reschedule, Attempts: rec.Attempts, Span: rec.Span,
			}
		case RecAssignClosed:
			delete(outAssigns, rec.UUID)
		case RecWatchdog:
			if rec.Profile == nil {
				continue
			}
			tracked[rec.UUID] = TrackedJob{
				Profile: *rec.Profile, Assignee: rec.Peer,
				Resub: rec.Resub, Expect: rec.Expect, Span: rec.Span,
			}
		case RecNotify:
			t, ok := tracked[rec.UUID]
			if !ok {
				continue
			}
			t.Assignee = rec.Peer
			if rec.Span != 0 {
				t.Span = rec.Span
			}
			tracked[rec.UUID] = t
		case RecTrackDone:
			delete(tracked, rec.UUID)
		case RecNotifySent:
			if rec.Profile == nil {
				continue
			}
			pendingNotify[rec.UUID] = PendingNotify{Profile: *rec.Profile, Initiator: rec.Peer, Span: rec.Span}
		case RecNotifyAck:
			delete(pendingNotify, rec.UUID)
		}
	}

	for _, q := range queued {
		out.Queued = append(out.Queued, q)
	}
	sort.Slice(out.Queued, func(i, k int) bool {
		return out.Queued[i].Profile.UUID < out.Queued[k].Profile.UUID
	})
	for _, t := range tracked {
		out.Tracked = append(out.Tracked, t)
	}
	sort.Slice(out.Tracked, func(i, k int) bool {
		return out.Tracked[i].Profile.UUID < out.Tracked[k].Profile.UUID
	})
	for _, oa := range outAssigns {
		out.OutAssigns = append(out.OutAssigns, oa)
	}
	sort.Slice(out.OutAssigns, func(i, k int) bool {
		return out.OutAssigns[i].Profile.UUID < out.OutAssigns[k].Profile.UUID
	})
	for _, pn := range pendingNotify {
		out.PendingNotify = append(out.PendingNotify, pn)
	}
	sort.Slice(out.PendingNotify, func(i, k int) bool {
		return out.PendingNotify[i].Profile.UUID < out.PendingNotify[k].Profile.UUID
	})
	out.Running = running
	return out
}
