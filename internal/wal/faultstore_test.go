package wal

import (
	"errors"
	"testing"
)

// TestFaultStoreShortWriteLeavesTornTail proves an injected short write has
// exactly a crashed append's signature: the journal errors (stickily, with
// the OnError hook fired once), and recovery cuts the torn tail while
// keeping every record written whole.
func TestFaultStoreShortWriteLeavesTornTail(t *testing.T) {
	inner := &MemStore{}
	fs := NewFaultStore(inner, FaultConfig{ShortWritePct: 1, Seed: 7})
	var hookErrs []error
	j := New(fs, Options{OnError: func(err error) { hookErrs = append(hookErrs, err) }})

	recs := testRecords(3)
	// Write two records whole through a transparent journal first.
	clean := New(inner, Options{})
	for _, r := range recs[:2] {
		if err := clean.Append(r); err != nil {
			t.Fatalf("clean append: %v", err)
		}
	}
	// The third append goes through the faulty store: it must error and
	// persist only a strict prefix of the frame.
	err := j.Append(recs[2])
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("faulty append: got %v, want ErrInjectedFault", err)
	}
	if len(hookErrs) != 1 || !errors.Is(hookErrs[0], ErrInjectedFault) {
		t.Fatalf("OnError fired %d times (%v), want exactly once", len(hookErrs), hookErrs)
	}
	if again := j.Append(recs[2]); !errors.Is(again, ErrInjectedFault) {
		t.Fatalf("sticky error not returned on retry: %v", again)
	}
	if len(hookErrs) != 1 {
		t.Fatalf("OnError re-fired on sticky retry: %d calls", len(hookErrs))
	}
	if got := fs.Counters().ShortWrites; got != 1 {
		t.Fatalf("short-write counter = %d, want 1", got)
	}

	// Recovery over the damaged bytes: torn classification, whole prefix.
	got, damage := DecodeRecordsDamage(mustJournal(t, inner))
	if damage != DamageTorn {
		t.Fatalf("short write classified %v, want torn", damage)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want the 2 written whole", len(got))
	}
}

// TestFaultStoreSyncError proves an injected fsync failure surfaces through
// Append when SyncEveryAppend is armed, and sticks.
func TestFaultStoreSyncError(t *testing.T) {
	fs := NewFaultStore(&MemStore{}, FaultConfig{SyncErrPct: 1, Seed: 3})
	j := New(fs, Options{SyncEveryAppend: true})
	if err := j.Append(testRecords(1)[0]); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("append with failing sync: got %v, want ErrInjectedFault", err)
	}
	if err := j.Err(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("sync failure not sticky: %v", err)
	}
	if got := fs.Counters().SyncErrs; got != 1 {
		t.Fatalf("sync-error counter = %d, want 1", got)
	}
}

// TestFaultStoreSnapshotError proves a failed snapshot leaves the journal
// untouched at the store level: the old snapshot and the full journal
// survive, so a reload still replays everything.
func TestFaultStoreSnapshotError(t *testing.T) {
	inner := &MemStore{}
	fs := NewFaultStore(inner, FaultConfig{SnapshotErrPct: 1, Seed: 5})
	j := New(fs, Options{})
	recs := testRecords(4)
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	state := Replay(nil, recs)
	if err := j.WriteSnapshot(state); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("snapshot: got %v, want ErrInjectedFault", err)
	}
	snap, tail, info, err := New(inner, Options{}).Load()
	if err != nil || !info.Clean() {
		t.Fatalf("reload: %v info=%+v", err, info)
	}
	if snap != nil {
		t.Fatal("failed snapshot still materialized")
	}
	if got := Replay(snap, tail); got.Hash() != state.Hash() {
		t.Fatal("journal damaged by failed snapshot")
	}
}

// TestFaultStoreBitFlipFailsLoudlyOrCuts sweeps restart-time bit flips over
// many seeds and asserts the recovery contract for every one: Load either
// classifies the damage (corrupt, or torn when the flip is indistinguishable
// from a short write) or the flip hid in bytes the decoder never trusted —
// and the decoded records are always a prefix of what was written. At least
// some seeds must produce a corrupt classification, or the fail-loud path
// is untested.
func TestFaultStoreBitFlipFailsLoudlyOrCuts(t *testing.T) {
	recs := testRecords(6)
	var sawCorrupt int
	for seed := int64(1); seed <= 24; seed++ {
		inner := &MemStore{}
		clean := New(inner, Options{})
		for _, r := range recs {
			if err := clean.Append(r); err != nil {
				t.Fatalf("seed %d: append: %v", seed, err)
			}
		}
		fs := NewFaultStore(inner, FaultConfig{FlipPct: 1, Seed: seed})
		_, got, info, err := New(fs, Options{}).Load()
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		if fs.Counters().BitFlips != 1 {
			t.Fatalf("seed %d: %d flips injected, want 1", seed, fs.Counters().BitFlips)
		}
		if info.Clean() {
			t.Fatalf("seed %d: flipped journal loaded clean with %d records", seed, len(got))
		}
		if info.Corrupt() {
			sawCorrupt++
		}
		if len(got) > len(recs) {
			t.Fatalf("seed %d: decoded more records than written", seed)
		}
		for i, r := range got {
			if r.UUID != recs[i].UUID {
				t.Fatalf("seed %d: record %d is not a prefix of the written stream", seed, i)
			}
		}
	}
	if sawCorrupt == 0 {
		t.Fatal("no seed produced a corrupt classification; fail-loud path unexercised")
	}
}

// TestReplayDeterminismUnderFaultChurn drives append/crash/reload cycles
// against a disk that injects short writes and sync errors, mimicking the
// daemon's recovery loop (reload, replay, compact, resume). After every
// crash the replay invariant must hold: two replays agree, nothing is
// classified as corruption (torn tails only), and the recovered state is a
// prefix-consistent fold — every acknowledged record present, at most the
// one in-flight record beyond them. The final state must equal the
// fault-free fold: exactly-one apply per record despite the churn.
func TestReplayDeterminismUnderFaultChurn(t *testing.T) {
	inner := &MemStore{}
	recs := testRecords(40)
	done := 0 // records durably folded into the store
	for cycle := 0; done < len(recs) && cycle < 200; cycle++ {
		fs := NewFaultStore(inner, FaultConfig{
			ShortWritePct: 0.15, SyncErrPct: 0.1, Seed: int64(cycle + 1),
		})
		j := New(fs, Options{SyncEveryAppend: true})
		i := done
		for i < len(recs) {
			// Crash on the first sticky error. The failing record may or
			// may not have been persisted whole (a sync error follows a
			// successful store append) — both outcomes must replay
			// consistently.
			if err := j.Append(recs[i]); err != nil {
				break
			}
			i++
		}
		snap, tail, info, err := New(inner, Options{}).Load()
		if err != nil {
			t.Fatalf("cycle %d: reload: %v", cycle, err)
		}
		if info.Corrupt() {
			t.Fatalf("cycle %d: short writes misclassified as corruption: %+v", cycle, info)
		}
		a, b := Replay(snap, tail), Replay(snap, tail)
		if a.Hash() != b.Hash() {
			t.Fatalf("cycle %d: replay nondeterministic", cycle)
		}
		n := len(a.Queued)
		if n < i || n > i+1 {
			t.Fatalf("cycle %d: folded %d records with %d acknowledged", cycle, n, i)
		}
		// Compact as Recover does: snapshot the recovered state and reset
		// the journal, truncating any torn tail before the next
		// incarnation appends.
		if err := New(inner, Options{}).WriteSnapshot(a); err != nil {
			t.Fatalf("cycle %d: compact: %v", cycle, err)
		}
		done = n
	}
	if done < len(recs) {
		t.Fatalf("churn never completed: %d/%d records", done, len(recs))
	}
	final, tail, info, err := New(inner, Options{}).Load()
	if err != nil || !info.Clean() {
		t.Fatalf("final load: %v info=%+v", err, info)
	}
	want := Replay(nil, recs)
	if got := Replay(final, tail); got.Hash() != want.Hash() {
		t.Fatal("state after fault churn diverged from the fault-free fold")
	}
}

// mustJournal reads a MemStore's raw journal bytes.
func mustJournal(t *testing.T, s *MemStore) []byte {
	t.Helper()
	b, err := s.ReadJournal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
