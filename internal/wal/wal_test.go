package wal

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
)

func testProfile(i int) job.Profile {
	return job.Profile{
		UUID:        job.UUID(fmt.Sprintf("%032x", i)),
		Req:         resource.Requirements{Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1},
		ERT:         10 * time.Minute,
		Class:       job.ClassBatch,
		SubmittedAt: time.Duration(i) * time.Second,
	}
}

func testRecords(n int) []Record {
	var recs []Record
	for i := 0; i < n; i++ {
		p := testProfile(i)
		recs = append(recs, Record{
			Type: RecEnqueue, At: time.Duration(i) * time.Second,
			UUID: p.UUID, Profile: &p, Peer: overlay.NodeID(i % 7),
			Seq: uint64(i), SpanSeq: uint64(i * 2), Span: uint64(i + 1),
		})
	}
	return recs
}

func TestRecordRoundTrip(t *testing.T) {
	p := testProfile(1)
	in := Record{
		Type: RecAssignSent, At: 3 * time.Second,
		UUID: p.UUID, Profile: &p, Peer: 4, Init: 2,
		Resub: 1, Attempts: 3, Expect: time.Hour, Reschedule: true,
		Span: 99, Seq: 7, SpanSeq: 8,
	}
	b, err := EncodeRecord(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	recs, clean := DecodeRecords(b)
	if !clean || len(recs) != 1 {
		t.Fatalf("decode: clean=%v n=%d", clean, len(recs))
	}
	got := recs[0]
	if got.Type != in.Type || got.UUID != in.UUID || got.Peer != in.Peer ||
		got.Init != in.Init || got.Resub != in.Resub || got.Attempts != in.Attempts ||
		got.Expect != in.Expect || !got.Reschedule || got.Span != in.Span ||
		got.Seq != in.Seq || got.SpanSeq != in.SpanSeq {
		t.Fatalf("round-trip mismatch: %+v != %+v", got, in)
	}
	if got.Profile == nil || got.Profile.UUID != p.UUID {
		t.Fatalf("profile lost in round trip: %+v", got.Profile)
	}
}

func TestDecodeRecordsTornTail(t *testing.T) {
	recs := testRecords(5)
	var stream []byte
	for _, r := range recs {
		b, err := EncodeRecord(r)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		stream = append(stream, b...)
	}
	// Cut the stream at every possible byte boundary: the decoded prefix
	// must always be a prefix of the original records, never garbage.
	for cut := 0; cut <= len(stream); cut++ {
		got, clean := DecodeRecords(stream[:cut])
		if clean && cut != len(stream) && len(got) == len(recs) {
			t.Fatalf("cut=%d: clean decode of truncated stream", cut)
		}
		for i, r := range got {
			if r.UUID != recs[i].UUID || r.Type != recs[i].Type {
				t.Fatalf("cut=%d: record %d mismatch", cut, i)
			}
		}
	}
}

func TestDecodeRecordsBitFlip(t *testing.T) {
	recs := testRecords(3)
	var stream []byte
	for _, r := range recs {
		b, _ := EncodeRecord(r)
		stream = append(stream, b...)
	}
	// Flip one bit at every position: the result must be a clean-prefix
	// decode (possibly shorter), never a panic, and any record that does
	// decode must match the original up to the flipped frame.
	for pos := 0; pos < len(stream); pos++ {
		mut := append([]byte(nil), stream...)
		mut[pos] ^= 0x40
		got, _ := DecodeRecords(mut)
		if len(got) > len(recs) {
			t.Fatalf("pos=%d: decoded more records than written", pos)
		}
	}
}

func TestSnapshotCompaction(t *testing.T) {
	store := &MemStore{}
	j := New(store, Options{SnapshotEvery: 4})
	for _, r := range testRecords(4) {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if !j.ShouldSnapshot() {
		t.Fatal("expected ShouldSnapshot after 4 appends with SnapshotEvery=4")
	}
	snap, recs, info, err := j.Load()
	if err != nil || !info.Clean() {
		t.Fatalf("load: snap=%v err=%v info=%+v", snap, err, info)
	}
	state := Replay(snap, recs)
	if len(state.Queued) != 4 {
		t.Fatalf("replayed %d queued jobs, want 4", len(state.Queued))
	}
	if err := j.WriteSnapshot(state); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if j.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot still true after compaction")
	}
	// Journal is compacted: load now sees the snapshot and no tail.
	snap2, recs2, info2, err := j.Load()
	if err != nil || !info2.Clean() {
		t.Fatalf("load after compact: %v info=%+v", err, info2)
	}
	if snap2 == nil || len(recs2) != 0 {
		t.Fatalf("after compact: snap=%v tail=%d records", snap2, len(recs2))
	}
	if got := Replay(snap2, recs2); got.Hash() != state.Hash() {
		t.Fatal("state hash changed across snapshot round trip")
	}
}

func TestCorruptSnapshotFallsBackToJournal(t *testing.T) {
	store := &MemStore{}
	j := New(store, Options{})
	recs := testRecords(3)
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	state := Replay(nil, recs)
	if err := j.WriteSnapshot(state); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Two more records after the snapshot, then the snapshot rots.
	post := testRecords(5)[3:]
	for _, r := range post {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	store.Corrupt(0, 100)
	snap, tail, info, err := j.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if info.SnapshotDamage != DamageCorrupt {
		t.Fatalf("corrupt snapshot classified %v, want corrupt", info.SnapshotDamage)
	}
	if info.JournalDamage != DamageNone {
		t.Fatalf("journal classified %v, want none", info.JournalDamage)
	}
	if snap != nil {
		t.Fatal("corrupt snapshot was not discarded")
	}
	// Journal-only recovery still yields the post-snapshot records.
	got := Replay(snap, tail)
	if len(got.Queued) != 2 {
		t.Fatalf("journal-only recovery found %d jobs, want 2", len(got.Queued))
	}
}

func TestReplayDeterminism(t *testing.T) {
	recs := testRecords(64)
	// Mix in lifecycle transitions so the fold exercises every branch.
	p := testProfile(0)
	recs = append(recs,
		Record{Type: RecStart, At: time.Hour, UUID: p.UUID, Profile: &p, Peer: 3},
		Record{Type: RecWatchdog, At: time.Hour, UUID: testProfile(1).UUID, Profile: profilePtr(1), Peer: 5, Expect: 2 * time.Hour},
		Record{Type: RecAssignSent, At: time.Hour, UUID: testProfile(2).UUID, Profile: profilePtr(2), Peer: 6, Init: 1},
		Record{Type: RecDequeue, At: time.Hour, UUID: testProfile(3).UUID},
		Record{Type: RecComplete, At: 2 * time.Hour, UUID: p.UUID},
	)
	a := Replay(nil, recs)
	b := Replay(nil, recs)
	if a.Hash() != b.Hash() {
		t.Fatalf("replay is not deterministic: %x != %x", a.Hash(), b.Hash())
	}
	// Replay through an intermediate snapshot must agree with a straight
	// replay — the compaction soundness property.
	mid := Replay(nil, recs[:32])
	c := Replay(mid, recs[32:])
	if c.Hash() != a.Hash() {
		t.Fatalf("snapshot-split replay diverged: %x != %x", c.Hash(), a.Hash())
	}
}

func profilePtr(i int) *job.Profile {
	p := testProfile(i)
	return &p
}

func TestReplayIgnoresUnknownJobs(t *testing.T) {
	// Records about jobs whose enqueue was compacted into a lost snapshot
	// must no-op, not corrupt the fold.
	recs := []Record{
		{Type: RecDequeue, At: time.Second, UUID: testProfile(9).UUID},
		{Type: RecNotify, At: time.Second, UUID: testProfile(9).UUID, Peer: 2},
		{Type: RecComplete, At: time.Second, UUID: testProfile(9).UUID},
		{Type: RecTrackDone, At: time.Second, UUID: testProfile(9).UUID},
		{Type: RecAssignClosed, At: time.Second, UUID: testProfile(9).UUID},
	}
	got := Replay(nil, recs)
	if got.Jobs() != 0 {
		t.Fatalf("unknown-job records materialized state: %+v", got)
	}
	if got.At != time.Second {
		t.Fatalf("timestamp not advanced: %v", got.At)
	}
}

func TestFileStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	store, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	j := New(store, Options{SyncEveryAppend: true})
	recs := testRecords(6)
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	state := Replay(nil, recs[:4])
	if err := j.WriteSnapshot(state); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for _, r := range recs[4:] {
		if err := j.Append(r); err != nil {
			t.Fatalf("append after compact: %v", err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen as a restarted process would.
	store2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close()
	j2 := New(store2, Options{})
	snap, tail, info, err := j2.Load()
	if err != nil || !info.Clean() {
		t.Fatalf("load: %v info=%+v", err, info)
	}
	if snap == nil {
		t.Fatal("snapshot missing after reopen")
	}
	got := Replay(snap, tail)
	if len(got.Queued) != 6 {
		t.Fatalf("recovered %d queued jobs, want 6", len(got.Queued))
	}
	want := Replay(nil, recs)
	if got.Hash() != want.Hash() {
		t.Fatal("file-store recovery diverged from in-memory replay")
	}
}

// TestReplayPendingNotify: a completion whose NOTIFY was never acked
// survives replay as a PendingNotify entry (so recovery resends it), and
// the ack record closes it.
func TestReplayPendingNotify(t *testing.T) {
	p := testProfile(1)
	recs := []Record{
		{Type: RecStart, UUID: p.UUID, Profile: &p, Peer: 7},
		{Type: RecComplete, UUID: p.UUID},
		{Type: RecNotifySent, UUID: p.UUID, Profile: &p, Peer: 7, Span: 42},
	}
	st := Replay(nil, recs)
	if len(st.PendingNotify) != 1 {
		t.Fatalf("pending notifies = %+v, want 1 entry", st.PendingNotify)
	}
	pn := st.PendingNotify[0]
	if pn.Initiator != 7 || pn.Span != 42 || pn.Profile.UUID != p.UUID {
		t.Fatalf("pending notify = %+v", pn)
	}
	if st.Running != nil || st.Jobs() != 1 {
		t.Fatalf("state = %+v, want only the pending notify", st)
	}
	// The entry survives snapshot layering (st as base) and the ack
	// closes it.
	st2 := Replay(st, []Record{{Type: RecNotifyAck, UUID: p.UUID}})
	if len(st2.PendingNotify) != 0 || st2.Jobs() != 0 {
		t.Fatalf("ack did not clear pending notify: %+v", st2)
	}
}
