package wal

import (
	"testing"
)

// FuzzDecodeRecords drives the journal codec with arbitrary bytes: whatever
// the input, DecodeRecords must return a clean prefix of structurally valid
// records — never a panic, an invalid record, or an unbounded allocation.
// This is the crash-in-the-middle-of-a-write contract: a torn final record,
// a bit-flipped CRC, or plain garbage all degrade to the intact prefix.
func FuzzDecodeRecords(f *testing.F) {
	var stream []byte
	for _, r := range testRecords(3) {
		b, err := EncodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		stream = append(stream, b...)
	}
	f.Add(stream)
	// Torn final record: the last frame's payload is cut short.
	f.Add(stream[:len(stream)-5])
	// Bit-flipped CRC on the second frame.
	flipped := append([]byte(nil), stream...)
	firstLen := len(stream) / 3
	flipped[firstLen+5] ^= 0x01
	f.Add(flipped)
	// Header promising more payload than exists.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	// Empty and sub-header inputs.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	// A truncated snapshot frame prepended to journal records.
	snapBytes, err := EncodeState(Replay(nil, testRecords(2)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapBytes[:len(snapBytes)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean := DecodeRecords(data)
		for i, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("record %d decoded invalid: %v", i, err)
			}
			// Every surviving record must re-encode: the clean prefix is
			// real journal content, not a lucky parse.
			if _, err := EncodeRecord(r); err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
		}
		if clean && len(data) > 0 && len(recs) == 0 {
			t.Fatalf("clean decode of %d bytes produced no records", len(data))
		}
	})
}

// FuzzDecodeState drives the snapshot decoder: arbitrary bytes must yield a
// valid state or an error, never a panic or a half-decoded snapshot.
func FuzzDecodeState(f *testing.F) {
	good, err := EncodeState(Replay(nil, testRecords(4)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	// Truncated snapshot (torn write): must error, not partially decode.
	f.Add(good[:len(good)/2])
	// Bit-flipped payload byte.
	bad := append([]byte(nil), good...)
	bad[len(bad)-3] ^= 0x10
	f.Add(bad)
	// Trailing garbage after an intact frame.
	f.Add(append(append([]byte(nil), good...), 0xde, 0xad))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeState(data)
		if err != nil {
			return
		}
		// A decoded snapshot must replay and hash deterministically.
		a := Replay(s, nil)
		b := Replay(s, nil)
		if a.Hash() != b.Hash() {
			t.Fatal("decoded snapshot replays non-deterministically")
		}
	})
}
