package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the journal's backing medium. The simulator uses MemStore (state
// survives a protocol-level crash because the harness owns it, exactly as a
// disk survives a process crash); the daemon uses FileStore.
type Store interface {
	// AppendJournal appends one framed record to the journal.
	AppendJournal(frame []byte) error

	// SyncJournal flushes appended records to durable storage.
	SyncJournal() error

	// ReadJournal returns the journal contents since the last reset.
	ReadJournal() ([]byte, error)

	// ResetJournal truncates the journal (after a snapshot compacted it).
	ResetJournal() error

	// WriteSnapshot atomically replaces the snapshot.
	WriteSnapshot(b []byte) error

	// ReadSnapshot returns the current snapshot, or nil when none exists.
	ReadSnapshot() ([]byte, error)
}

// Options tunes a journal.
type Options struct {
	// SnapshotEvery is the compaction cadence: after this many appended
	// records the owner should write a snapshot (ShouldSnapshot turns
	// true). Zero means the default of 256.
	SnapshotEvery int

	// SyncEveryAppend fsyncs the journal after every record. Off, records
	// are only guaranteed durable after an explicit Sync or snapshot —
	// faster, but a crash can lose the tail since the last sync (which
	// recovery tolerates: clean-prefix replay plus the protocol's own
	// failsafes cover the gap).
	SyncEveryAppend bool

	// OnError, when set, fires exactly once — synchronously, with the
	// journal lock held — at the moment the sticky write error is first
	// recorded. A daemon uses it to die loudly (the write-ahead discipline
	// only protects exactly-one execution if a failed append stops the
	// world before the corresponding event becomes observable). The hook
	// must not call back into the journal.
	OnError func(error)
}

// DefaultSnapshotEvery is the default compaction cadence.
const DefaultSnapshotEvery = 256

// Journal is a write-ahead log of scheduler state transitions over a Store,
// with snapshot-based compaction. It is safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	store    Store
	opts     Options
	appended int // records since the last snapshot
	err      error
}

// New creates a journal over the given store.
func New(store Store, opts Options) *Journal {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	return &Journal{store: store, opts: opts}
}

// fail records the sticky error and fires the OnError hook exactly once.
// Callers hold j.mu.
func (j *Journal) fail(err error) error {
	j.err = err
	if j.opts.OnError != nil {
		j.opts.OnError(err)
	}
	return err
}

// Append journals one record. Errors are sticky: after the first failed
// write the journal refuses further appends (a half-written journal must
// not keep growing past the damage).
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	if err := j.store.AppendJournal(frame); err != nil {
		return j.fail(fmt.Errorf("wal: append: %w", err))
	}
	if j.opts.SyncEveryAppend {
		if err := j.store.SyncJournal(); err != nil {
			return j.fail(fmt.Errorf("wal: sync: %w", err))
		}
	}
	j.appended++
	return nil
}

// Sync flushes the journal to durable storage. A failed sync is sticky like
// a failed append: durability can no longer be promised past this point.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.store.SyncJournal(); err != nil {
		return j.fail(fmt.Errorf("wal: sync: %w", err))
	}
	return nil
}

// ShouldSnapshot reports whether enough records accumulated since the last
// snapshot to warrant compaction.
func (j *Journal) ShouldSnapshot() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err == nil && j.appended >= j.opts.SnapshotEvery
}

// WriteSnapshot persists s and compacts the journal: after it returns, Load
// yields s plus only the records appended afterwards.
func (j *Journal) WriteSnapshot(s *State) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	b, err := EncodeState(s)
	if err != nil {
		return err
	}
	if err := j.store.WriteSnapshot(b); err != nil {
		return j.fail(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := j.store.ResetJournal(); err != nil {
		return j.fail(fmt.Errorf("wal: compact: %w", err))
	}
	j.appended = 0
	return nil
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ErrCorrupt marks a store whose persisted bytes were altered after being
// accepted — a failed CRC inside a complete frame, a wild length field, an
// undecodable record or snapshot. Recovery policy treats it differently
// from a torn tail: callers that require exactly-one execution must refuse
// to run on a corrupt store (errors.Is against a Recover error detects it).
var ErrCorrupt = errors.New("wal: store corrupt")

// LoadInfo classifies what Load had to discard. The zero value means the
// store decoded whole.
type LoadInfo struct {
	// SnapshotDamage is the snapshot's damage class. Snapshots are written
	// atomically (temp + rename), so any damage here is corruption, never
	// a torn write; a damaged snapshot is discarded and recovery proceeds
	// from the journal alone.
	SnapshotDamage Damage

	// JournalDamage is the journal's damage class: DamageTorn for the
	// expected crash artifact (incomplete final frame, cut silently),
	// DamageCorrupt for bit rot inside accepted frames.
	JournalDamage Damage
}

// Clean reports whether nothing had to be discarded.
func (i LoadInfo) Clean() bool {
	return i.SnapshotDamage == DamageNone && i.JournalDamage == DamageNone
}

// Corrupt reports whether any discarded bytes indicate bit rot rather than
// a torn crash artifact.
func (i LoadInfo) Corrupt() bool {
	return i.SnapshotDamage == DamageCorrupt || i.JournalDamage == DamageCorrupt
}

// Load reads the persisted snapshot and journal tail. A damaged snapshot is
// discarded (recovery proceeds from the journal alone); a torn or corrupt
// journal tail is cut at the last intact record. info classifies what was
// discarded so callers can tolerate torn tails while failing loudly on
// corruption.
func (j *Journal) Load() (snap *State, recs []Record, info LoadInfo, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	sb, err := j.store.ReadSnapshot()
	if err != nil {
		return nil, nil, info, fmt.Errorf("wal: read snapshot: %w", err)
	}
	if len(sb) > 0 {
		snap, err = DecodeState(sb)
		if err != nil {
			// The snapshot is damaged; the journal may still hold a
			// usable suffix of the state. Atomic snapshot writes mean
			// this can only be corruption.
			snap = nil
			info.SnapshotDamage = DamageCorrupt
		}
	}
	jb, err := j.store.ReadJournal()
	if err != nil {
		return nil, nil, info, fmt.Errorf("wal: read journal: %w", err)
	}
	recs, info.JournalDamage = DecodeRecordsDamage(jb)
	return snap, recs, info, nil
}

// MemStore is an in-memory Store for the deterministic simulator and tests.
// The zero value is ready to use.
type MemStore struct {
	mu       sync.Mutex
	journal  []byte
	snapshot []byte
}

var _ Store = (*MemStore)(nil)

// AppendJournal implements Store.
func (m *MemStore) AppendJournal(frame []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journal = append(m.journal, frame...)
	return nil
}

// SyncJournal implements Store (memory is always "durable").
func (m *MemStore) SyncJournal() error { return nil }

// ReadJournal implements Store.
func (m *MemStore) ReadJournal() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.journal...), nil
}

// ResetJournal implements Store.
func (m *MemStore) ResetJournal() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journal = nil
	return nil
}

// WriteSnapshot implements Store.
func (m *MemStore) WriteSnapshot(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot = append([]byte(nil), b...)
	return nil
}

// ReadSnapshot implements Store.
func (m *MemStore) ReadSnapshot() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.snapshot...), nil
}

// Corrupt damages the stored bytes for crash-injection tests: it truncates
// the journal by truncJournal bytes and flips one bit of the snapshot at
// flipSnapshotBit (negative = leave intact).
func (m *MemStore) Corrupt(truncJournal int, flipSnapshotBit int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if truncJournal > 0 && truncJournal <= len(m.journal) {
		m.journal = m.journal[:len(m.journal)-truncJournal]
	}
	if flipSnapshotBit >= 0 && flipSnapshotBit/8 < len(m.snapshot) {
		m.snapshot[flipSnapshotBit/8] ^= 1 << (flipSnapshotBit % 8)
	}
}

// File names inside a FileStore data directory.
const (
	JournalFile  = "journal.wal"
	SnapshotFile = "snapshot.wal"
	snapshotTmp  = "snapshot.wal.tmp"
)

// FileStore persists the journal and snapshot as files in one directory.
// The snapshot is replaced atomically (write-temp + rename), so a crash
// during snapshotting leaves the previous snapshot intact.
type FileStore struct {
	dir string

	mu sync.Mutex
	f  *os.File // journal, opened for append
}

var _ Store = (*FileStore)(nil)

// OpenFileStore opens (creating if needed) the data directory.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: data dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open journal: %w", err)
	}
	return &FileStore{dir: dir, f: f}, nil
}

// Dir reports the store's data directory.
func (s *FileStore) Dir() string { return s.dir }

// AppendJournal implements Store.
func (s *FileStore) AppendJournal(frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write(frame)
	return err
}

// SyncJournal implements Store.
func (s *FileStore) SyncJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// ReadJournal implements Store.
func (s *FileStore) ReadJournal() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := os.ReadFile(filepath.Join(s.dir, JournalFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return b, err
}

// ResetJournal implements Store.
func (s *FileStore) ResetJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	// O_APPEND writes ignore the offset, but keep it honest for readers.
	_, err := s.f.Seek(0, 0)
	return err
}

// WriteSnapshot implements Store: write-temp, fsync, rename, fsync dir.
func (s *FileStore) WriteSnapshot(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, SnapshotFile)); err != nil {
		return err
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadSnapshot implements Store.
func (s *FileStore) ReadSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := os.ReadFile(filepath.Join(s.dir, SnapshotFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return b, err
}

// Close closes the journal file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
