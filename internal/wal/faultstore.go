package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrInjectedFault marks an error manufactured by a FaultStore. Production
// code never sees it; soak harnesses use errors.Is to tell injected disk
// faults from real ones.
var ErrInjectedFault = errors.New("wal: injected disk fault")

// FaultConfig arms a FaultStore's seeded fault probabilities. Each is
// evaluated independently per operation; zero everywhere means transparent
// passthrough.
type FaultConfig struct {
	// ShortWritePct is the probability an AppendJournal persists only a
	// strict prefix of the frame and then reports an error — the classic
	// torn write. The journal's sticky-error discipline must stop the
	// world before anything built on the lost record becomes observable.
	ShortWritePct float64

	// SyncErrPct is the probability a SyncJournal reports failure. With
	// SyncEveryAppend armed this surfaces through Append, exactly like a
	// dying disk refusing fsync.
	SyncErrPct float64

	// SnapshotErrPct is the probability a WriteSnapshot fails as a unit
	// (the atomic temp+rename never happens, the old snapshot survives).
	SnapshotErrPct float64

	// FlipPct is the probability a ReadJournal or ReadSnapshot result has
	// one random bit flipped — restart-time bit rot. Recovery must either
	// cut it (torn classification) or refuse to run (corrupt).
	FlipPct float64

	// Seed makes the fault sequence reproducible.
	Seed int64
}

// Active reports whether any fault probability is armed.
func (c FaultConfig) Active() bool {
	return c.ShortWritePct > 0 || c.SyncErrPct > 0 || c.SnapshotErrPct > 0 || c.FlipPct > 0
}

// FaultCounters counts injected faults by class. A soak report surfaces
// them so "recovery never broke" can be told apart from "faults never
// fired".
type FaultCounters struct {
	ShortWrites  uint64 `json:"short_writes"`
	SyncErrs     uint64 `json:"sync_errs"`
	SnapshotErrs uint64 `json:"snapshot_errs"`
	BitFlips     uint64 `json:"bit_flips"`
}

// Total sums every injected fault.
func (c FaultCounters) Total() uint64 {
	return c.ShortWrites + c.SyncErrs + c.SnapshotErrs + c.BitFlips
}

// FaultStore wraps a Store with seeded disk-fault injection: short writes,
// fsync errors, failed snapshots, and restart-time bit flips. It exists to
// prove the recovery stack's claims (clean-prefix replay, exactly-one
// execution, fail-loud on corruption) against a disk that misbehaves on a
// schedule reproducible from its seed.
type FaultStore struct {
	inner Store

	mu  sync.Mutex
	cfg FaultConfig
	rng *rand.Rand

	shortWrites  atomic.Uint64
	syncErrs     atomic.Uint64
	snapshotErrs atomic.Uint64
	bitFlips     atomic.Uint64
}

var _ Store = (*FaultStore)(nil)

// NewFaultStore wraps inner with the given fault profile.
func NewFaultStore(inner Store, cfg FaultConfig) *FaultStore {
	return &FaultStore{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Counters snapshots the injected-fault counters.
func (s *FaultStore) Counters() FaultCounters {
	return FaultCounters{
		ShortWrites:  s.shortWrites.Load(),
		SyncErrs:     s.syncErrs.Load(),
		SnapshotErrs: s.snapshotErrs.Load(),
		BitFlips:     s.bitFlips.Load(),
	}
}

// roll draws one fault decision; intn is only consulted under the lock.
func (s *FaultStore) roll(pct float64) bool {
	if pct <= 0 {
		return false
	}
	return s.rng.Float64() < pct
}

// AppendJournal implements Store, injecting seeded short writes: a strict
// prefix of the frame reaches the inner store and the caller gets an error,
// leaving exactly the torn tail a crashed append leaves.
func (s *FaultStore) AppendJournal(frame []byte) error {
	s.mu.Lock()
	short := len(frame) > 1 && s.roll(s.cfg.ShortWritePct)
	var n int
	if short {
		n = 1 + s.rng.Intn(len(frame)-1)
	}
	s.mu.Unlock()
	if short {
		s.shortWrites.Add(1)
		if err := s.inner.AppendJournal(frame[:n]); err != nil {
			return err
		}
		return fmt.Errorf("short write %d/%d bytes: %w", n, len(frame), ErrInjectedFault)
	}
	return s.inner.AppendJournal(frame)
}

// SyncJournal implements Store, injecting seeded fsync failures.
func (s *FaultStore) SyncJournal() error {
	s.mu.Lock()
	fail := s.roll(s.cfg.SyncErrPct)
	s.mu.Unlock()
	if fail {
		s.syncErrs.Add(1)
		return fmt.Errorf("fsync: %w", ErrInjectedFault)
	}
	return s.inner.SyncJournal()
}

// ReadJournal implements Store, injecting seeded restart-time bit flips.
func (s *FaultStore) ReadJournal() ([]byte, error) {
	b, err := s.inner.ReadJournal()
	if err != nil {
		return b, err
	}
	return s.maybeFlip(b), nil
}

// ResetJournal implements Store (compaction passes through untouched).
func (s *FaultStore) ResetJournal() error { return s.inner.ResetJournal() }

// WriteSnapshot implements Store, injecting seeded whole-snapshot failures.
// The inner store is not touched on failure: the previous snapshot
// survives, exactly as the atomic temp+rename discipline guarantees.
func (s *FaultStore) WriteSnapshot(b []byte) error {
	s.mu.Lock()
	fail := s.roll(s.cfg.SnapshotErrPct)
	s.mu.Unlock()
	if fail {
		s.snapshotErrs.Add(1)
		return fmt.Errorf("snapshot write: %w", ErrInjectedFault)
	}
	return s.inner.WriteSnapshot(b)
}

// ReadSnapshot implements Store, injecting seeded restart-time bit flips.
func (s *FaultStore) ReadSnapshot() ([]byte, error) {
	b, err := s.inner.ReadSnapshot()
	if err != nil {
		return b, err
	}
	return s.maybeFlip(b), nil
}

// maybeFlip flips one random bit of b in place per armed roll. The inner
// stores hand back freshly allocated buffers, so mutating is safe; the
// damage is confined to this read, not the persisted bytes — restart-time
// rot, not write-time rot.
func (s *FaultStore) maybeFlip(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	s.mu.Lock()
	flip := s.roll(s.cfg.FlipPct)
	var bit int
	if flip {
		bit = s.rng.Intn(len(b) * 8)
	}
	s.mu.Unlock()
	if flip {
		s.bitFlips.Add(1)
		b[bit/8] ^= 1 << (bit % 8)
	}
	return b
}
