package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"unicode/utf8"
)

// Frame layout: a 4-byte big-endian payload length, a 4-byte big-endian
// CRC-32 (IEEE) of the payload, then the JSON payload. The CRC is what
// distinguishes a torn tail (partial final write after a crash) from silent
// bit rot: both are cut off at the last intact frame.
const (
	frameHeader = 8

	// maxFramePayload bounds one frame; a journal record or snapshot
	// beyond this is corrupt by construction (a job profile is ~200 bytes,
	// a full snapshot a few hundred KB at the paper's queue depths).
	maxFramePayload = 16 << 20
)

// appendFrame appends one CRC-framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Damage classifies what terminated a frame stream's clean prefix. The
// distinction drives recovery policy: a torn tail is the expected signature
// of a crash (or short write) mid-append and is silently cut; corruption —
// a complete frame whose bytes do not hash — means the medium altered data
// it had accepted, and a daemon must fail loudly rather than trust anything
// it replays.
type Damage int

const (
	// DamageNone: the whole stream decoded.
	DamageNone Damage = iota

	// DamageTorn: the final frame is incomplete (partial header, or a
	// declared length running past the end of the stream). Everything that
	// was written whole is intact.
	DamageTorn

	// DamageCorrupt: a complete frame failed its CRC, declared an
	// impossible length, or carried an undecodable record — bit rot, not a
	// crash artifact. A short write can never produce this: it leaves a
	// truncated frame, and the already-written prefix still hashes.
	DamageCorrupt
)

// String names the damage class for logs and reports.
func (d Damage) String() string {
	switch d {
	case DamageNone:
		return "none"
	case DamageTorn:
		return "torn"
	default:
		return "corrupt"
	}
}

// splitFrames decodes the clean prefix of a frame stream: every intact
// frame up to the first torn, oversized, or CRC-mismatched one, with the
// cut classified as torn (crash artifact) or corrupt (bit rot).
func splitFrames(b []byte) (payloads [][]byte, damage Damage) {
	for len(b) > 0 {
		if len(b) < frameHeader {
			return payloads, DamageTorn
		}
		size := binary.BigEndian.Uint32(b[0:4])
		sum := binary.BigEndian.Uint32(b[4:8])
		if size > maxFramePayload {
			// The length field is written before any payload byte, so a
			// short write cannot leave a wild length behind: this is a
			// flipped bit in a field the store had already accepted.
			return payloads, DamageCorrupt
		}
		if uint64(frameHeader)+uint64(size) > uint64(len(b)) {
			return payloads, DamageTorn
		}
		payload := b[frameHeader : frameHeader+size]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, DamageCorrupt
		}
		payloads = append(payloads, payload)
		b = b[frameHeader+size:]
	}
	return payloads, DamageNone
}

// EncodeRecord frames one journal record for appending.
func EncodeRecord(rec Record) ([]byte, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	return appendFrame(nil, payload), nil
}

// DecodeRecords decodes the clean prefix of a journal byte stream. Frames
// that carry structurally invalid records (wrong type, bad JSON smuggled
// past the CRC by a valid re-checksum, non-UTF-8 text) terminate the prefix
// exactly like a framing fault: everything before them is returned, and
// clean reports false. Callers that must distinguish a crash artifact from
// bit rot use DecodeRecordsDamage.
func DecodeRecords(b []byte) (recs []Record, clean bool) {
	recs, damage := DecodeRecordsDamage(b)
	return recs, damage == DamageNone
}

// DecodeRecordsDamage is DecodeRecords with the cut classified: DamageTorn
// for an incomplete final frame (tolerable crash artifact), DamageCorrupt
// for a complete frame whose bytes the CRC or record decoder refute.
func DecodeRecordsDamage(b []byte) (recs []Record, damage Damage) {
	payloads, damage := splitFrames(b)
	for _, p := range payloads {
		if !utf8.Valid(p) {
			return recs, DamageCorrupt
		}
		var rec Record
		if err := json.Unmarshal(p, &rec); err != nil {
			return recs, DamageCorrupt
		}
		if err := rec.Validate(); err != nil {
			return recs, DamageCorrupt
		}
		recs = append(recs, rec)
	}
	return recs, damage
}

// EncodeState frames a snapshot. The snapshot is a single frame, so a torn
// snapshot write is detected as a whole (there is no useful prefix of half
// a state).
func EncodeState(s *State) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("wal: encode nil state")
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("wal: encode state: %w", err)
	}
	return appendFrame(nil, payload), nil
}

// DecodeState decodes a snapshot previously produced by EncodeState. A
// torn, corrupt, or trailing-garbage snapshot returns an error; callers
// discard it and recover from the journal alone.
func DecodeState(b []byte) (*State, error) {
	payloads, damage := splitFrames(b)
	if damage != DamageNone || len(payloads) != 1 {
		return nil, fmt.Errorf("wal: snapshot corrupt (%d intact frames, damage=%v)", len(payloads), damage)
	}
	if !utf8.Valid(payloads[0]) {
		return nil, fmt.Errorf("wal: snapshot payload is not valid UTF-8")
	}
	var s State
	if err := json.Unmarshal(payloads[0], &s); err != nil {
		return nil, fmt.Errorf("wal: decode snapshot: %w", err)
	}
	return &s, nil
}
