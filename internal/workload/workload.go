// Package workload generates the synthetic grid population and job stream
// of the paper's evaluation (§IV-B, §IV-D): node profiles follow the
// TOP500-derived distributions, job estimated running times follow
// N(2h30m, 1h15m) clamped to [1h, 4h], and deadline jobs receive an extra
// slack interval drawn from a scaled version of the same distribution.
//
// The paper relies on the PACE profiling middleware only as the source of
// running-time estimates; drawing the estimates directly from the stated
// distribution is the paper's own simulation substitution, reproduced here.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

// ERT distribution parameters from §IV-D.
const (
	ERTMean = 2*time.Hour + 30*time.Minute
	ERTStd  = time.Hour + 15*time.Minute
	ERTMin  = time.Hour
	ERTMax  = 4 * time.Hour
)

// DeadlineSlack values from §IV-E: the Deadline scenarios average 7h30m of
// extra slack past the expected completion; DeadlineH tightens it to 2h30m.
const (
	DeadlineSlackRelaxed = 7*time.Hour + 30*time.Minute
	DeadlineSlackTight   = 2*time.Hour + 30*time.Minute
)

// Normal draws from N(mean, std) clamped to [min, max].
func Normal(rng *rand.Rand, mean, std, min, max time.Duration) time.Duration {
	d := time.Duration(rng.NormFloat64()*float64(std)) + mean
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// JobGen draws the evaluation's random job stream.
type JobGen struct {
	rng     *rand.Rand
	sampler *resource.Sampler

	// Class selects batch or deadline jobs.
	Class job.Class

	// DeadlineSlack is the mean extra interval past the expected
	// completion time granted to deadline jobs. The draw follows the ERT
	// distribution shape scaled to this mean (clamped to [0.4, 1.6]×mean,
	// mirroring the ERT clamp ratio). Required for deadline class.
	DeadlineSlack time.Duration

	// Hosts, when non-empty, makes every generated job satisfiable by at
	// least one of the given profiles: requirements are redrawn until one
	// host matches. The paper's evaluation completes all 1000 jobs, which
	// implies its generator avoided globally unsatisfiable requirement
	// combinations.
	Hosts []resource.Profile

	// ReservationFraction makes that share of generated jobs carry an
	// advance reservation (future-work extension); ReservationLead is the
	// mean lead time of the reservation past submission, drawn with the
	// same clamped-normal shape as the other intervals.
	ReservationFraction float64
	ReservationLead     time.Duration
}

// NewJobGen builds a generator for the given class over rng.
func NewJobGen(rng *rand.Rand, class job.Class) (*JobGen, error) {
	if class != job.ClassBatch && class != job.ClassDeadline {
		return nil, fmt.Errorf("invalid job class %d", int(class))
	}
	g := &JobGen{rng: rng, sampler: resource.NewSampler(rng), Class: class}
	if class == job.ClassDeadline {
		g.DeadlineSlack = DeadlineSlackRelaxed
	}
	return g, nil
}

// Next draws the next job profile, stamped as submitted at the given time.
func (g *JobGen) Next(submitAt time.Duration) job.Profile {
	req := g.sampler.Requirements()
	if len(g.Hosts) > 0 {
		for !g.satisfiable(req) {
			req = g.sampler.Requirements()
		}
	}
	ert := Normal(g.rng, ERTMean, ERTStd, ERTMin, ERTMax)
	p := job.Profile{
		UUID:        job.NewUUID(g.rng),
		Req:         req,
		ERT:         ert,
		Class:       g.Class,
		SubmittedAt: submitAt,
	}
	if g.Class == job.ClassDeadline {
		slack := Normal(
			g.rng,
			g.DeadlineSlack,
			time.Duration(float64(g.DeadlineSlack)*0.5),
			time.Duration(float64(g.DeadlineSlack)*0.4),
			time.Duration(float64(g.DeadlineSlack)*1.6),
		)
		p.Deadline = submitAt + ert + slack
	}
	if g.ReservationFraction > 0 && g.ReservationLead > 0 && g.rng.Float64() < g.ReservationFraction {
		lead := Normal(
			g.rng,
			g.ReservationLead,
			time.Duration(float64(g.ReservationLead)*0.5),
			time.Duration(float64(g.ReservationLead)*0.4),
			time.Duration(float64(g.ReservationLead)*1.6),
		)
		p.EarliestStart = submitAt + lead
		if p.Class == job.ClassDeadline && p.Deadline <= p.EarliestStart+ert {
			// Keep reserved deadline jobs feasible.
			p.Deadline = p.EarliestStart + ert + lead
		}
	}
	return p
}

func (g *JobGen) satisfiable(req resource.Requirements) bool {
	for _, h := range g.Hosts {
		if h.Satisfies(req) {
			return true
		}
	}
	return false
}

// Schedule is a fixed-rate submission plan: Count submissions starting at
// Start, one every Interval (§IV-E: 1000 jobs every 10 s from 20 m in).
type Schedule struct {
	Start    time.Duration
	Interval time.Duration
	Count    int
}

// Validate reports the first structural problem with the schedule.
func (s Schedule) Validate() error {
	switch {
	case s.Count < 1:
		return fmt.Errorf("submission count %d must be positive", s.Count)
	case s.Interval <= 0:
		return fmt.Errorf("submission interval %v must be positive", s.Interval)
	case s.Start < 0:
		return fmt.Errorf("submission start %v must be non-negative", s.Start)
	}
	return nil
}

// Times returns every submission instant.
func (s Schedule) Times() []time.Duration {
	out := make([]time.Duration, s.Count)
	for i := range out {
		out[i] = s.Start + time.Duration(i)*s.Interval
	}
	return out
}

// End is the instant of the last submission.
func (s Schedule) End() time.Duration {
	if s.Count == 0 {
		return s.Start
	}
	return s.Start + time.Duration(s.Count-1)*s.Interval
}
