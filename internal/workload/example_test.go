package workload_test

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/workload"
)

// The paper's submission plan: 1000 jobs, one every 10 seconds, starting
// 20 minutes into the run — ending at 3h06m50s (the paper rounds to 3h7m).
func ExampleSchedule() {
	s := workload.Schedule{
		Start:    20 * time.Minute,
		Interval: 10 * time.Second,
		Count:    1000,
	}
	fmt.Println("first:", s.Times()[0])
	fmt.Println("last: ", s.End())
	// Output:
	// first: 20m0s
	// last:  3h6m30s
}

// Job estimates follow N(2h30m, 1h15m) clamped to [1h, 4h] (§IV-D).
func ExampleJobGen() {
	gen, err := workload.NewJobGen(rand.New(rand.NewSource(7)), job.ClassBatch)
	if err != nil {
		fmt.Println("gen:", err)
		return
	}
	p := gen.Next(20 * time.Minute)
	fmt.Println("class:", p.Class)
	fmt.Println("ert in [1h,4h]:", p.ERT >= time.Hour && p.ERT <= 4*time.Hour)
	fmt.Println("submitted at:", p.SubmittedAt)
	// Output:
	// class: batch
	// ert in [1h,4h]: true
	// submitted at: 20m0s
}
