package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

func TestNormalClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		d := Normal(rng, ERTMean, ERTStd, ERTMin, ERTMax)
		if d < ERTMin || d > ERTMax {
			t.Fatalf("Normal draw %v outside [%v, %v]", d, ERTMin, ERTMax)
		}
	}
}

func TestNormalMeanRoughlyCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Normal(rng, ERTMean, ERTStd, ERTMin, ERTMax)
	}
	mean := sum / n
	// Clamping pulls the mean slightly toward the center; allow ±10m.
	if diff := (mean - ERTMean).Abs(); diff > 10*time.Minute {
		t.Fatalf("clamped mean %v too far from %v", mean, ERTMean)
	}
}

func TestNewJobGenRejectsBadClass(t *testing.T) {
	if _, err := NewJobGen(rand.New(rand.NewSource(1)), job.Class(0)); err == nil {
		t.Fatal("NewJobGen accepted invalid class")
	}
}

func TestBatchJobsValid(t *testing.T) {
	g, err := NewJobGen(rand.New(rand.NewSource(3)), job.ClassBatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p := g.Next(time.Duration(i) * time.Second)
		if err := p.Validate(); err != nil {
			t.Fatalf("generated invalid job: %v", err)
		}
		if p.Class != job.ClassBatch || p.Deadline != 0 {
			t.Fatalf("batch job got class %v deadline %v", p.Class, p.Deadline)
		}
		if p.SubmittedAt != time.Duration(i)*time.Second {
			t.Fatal("SubmittedAt not stamped")
		}
	}
}

func TestDeadlineJobsValid(t *testing.T) {
	g, err := NewJobGen(rand.New(rand.NewSource(4)), job.ClassDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if g.DeadlineSlack != DeadlineSlackRelaxed {
		t.Fatalf("default slack %v, want %v", g.DeadlineSlack, DeadlineSlackRelaxed)
	}
	var slacks []time.Duration
	for i := 0; i < 5000; i++ {
		at := time.Duration(i) * time.Second
		p := g.Next(at)
		if err := p.Validate(); err != nil {
			t.Fatalf("generated invalid deadline job: %v", err)
		}
		slack := p.Deadline - at - p.ERT
		if slack <= 0 {
			t.Fatalf("deadline slack %v not positive", slack)
		}
		slacks = append(slacks, slack)
	}
	var sum time.Duration
	for _, s := range slacks {
		sum += s
	}
	mean := sum / time.Duration(len(slacks))
	if math.Abs(float64(mean-DeadlineSlackRelaxed)) > float64(30*time.Minute) {
		t.Fatalf("mean slack %v too far from %v", mean, DeadlineSlackRelaxed)
	}
}

func TestTightDeadlineSlack(t *testing.T) {
	g, err := NewJobGen(rand.New(rand.NewSource(5)), job.ClassDeadline)
	if err != nil {
		t.Fatal(err)
	}
	g.DeadlineSlack = DeadlineSlackTight
	for i := 0; i < 1000; i++ {
		p := g.Next(0)
		slack := p.Deadline - p.ERT
		lo := time.Duration(float64(DeadlineSlackTight) * 0.4)
		hi := time.Duration(float64(DeadlineSlackTight) * 1.6)
		if slack < lo || slack > hi {
			t.Fatalf("slack %v outside [%v, %v]", slack, lo, hi)
		}
	}
}

func TestSatisfiableHosts(t *testing.T) {
	// Single host: every generated job must match it.
	host := resource.Profile{
		Arch: resource.ArchSPARC, OS: resource.OSBSD,
		MemoryGB: 16, DiskGB: 16, PerfIndex: 1.5,
	}
	g, err := NewJobGen(rand.New(rand.NewSource(6)), job.ClassBatch)
	if err != nil {
		t.Fatal(err)
	}
	g.Hosts = []resource.Profile{host}
	for i := 0; i < 40; i++ {
		p := g.Next(0)
		if !host.Satisfies(p.Req) {
			t.Fatalf("unsatisfiable job generated: %v vs host %v", p.Req, host)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	gen := func() job.Profile {
		g, err := NewJobGen(rand.New(rand.NewSource(7)), job.ClassBatch)
		if err != nil {
			t.Fatal(err)
		}
		return g.Next(time.Minute)
	}
	if a, b := gen(), gen(); a != b {
		t.Fatalf("same seed produced %+v and %+v", a, b)
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{Start: 20 * time.Minute, Interval: 10 * time.Second, Count: 1000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	tests := []struct {
		name string
		give Schedule
	}{
		{"zero count", Schedule{Interval: time.Second, Count: 0}},
		{"zero interval", Schedule{Interval: 0, Count: 1}},
		{"negative start", Schedule{Start: -time.Second, Interval: time.Second, Count: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Fatal("Validate accepted bad schedule")
			}
		})
	}
}

func TestScheduleTimes(t *testing.T) {
	s := Schedule{Start: 20 * time.Minute, Interval: 10 * time.Second, Count: 1000}
	times := s.Times()
	if len(times) != 1000 {
		t.Fatalf("len(times) = %d", len(times))
	}
	if times[0] != 20*time.Minute {
		t.Fatalf("first = %v", times[0])
	}
	// Paper: submissions run from 20m to 3h7m (10s interval, 1000 jobs).
	wantEnd := 20*time.Minute + 999*10*time.Second
	if times[len(times)-1] != wantEnd || s.End() != wantEnd {
		t.Fatalf("last = %v, want %v", times[len(times)-1], wantEnd)
	}
	if end := (3*time.Hour + 7*time.Minute); (s.End() - end).Abs() > time.Minute {
		t.Fatalf("schedule end %v should approximate the paper's 3h7m", s.End())
	}
}

func TestReservationGeneration(t *testing.T) {
	g, err := NewJobGen(rand.New(rand.NewSource(8)), job.ClassBatch)
	if err != nil {
		t.Fatal(err)
	}
	g.ReservationFraction = 0.5
	g.ReservationLead = 2 * time.Hour
	reserved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Second
		p := g.Next(at)
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid reserved job: %v", err)
		}
		if p.EarliestStart == 0 {
			continue
		}
		reserved++
		lead := p.EarliestStart - at
		lo := time.Duration(float64(2*time.Hour) * 0.4)
		hi := time.Duration(float64(2*time.Hour) * 1.6)
		if lead < lo || lead > hi {
			t.Fatalf("reservation lead %v outside [%v, %v]", lead, lo, hi)
		}
	}
	frac := float64(reserved) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("reserved fraction %.2f, want ≈0.5", frac)
	}
}

func TestReservedDeadlineJobsFeasible(t *testing.T) {
	g, err := NewJobGen(rand.New(rand.NewSource(9)), job.ClassDeadline)
	if err != nil {
		t.Fatal(err)
	}
	g.ReservationFraction = 1
	g.ReservationLead = 4 * time.Hour
	for i := 0; i < 500; i++ {
		p := g.Next(0)
		if p.Deadline < p.EarliestStart+p.ERT {
			t.Fatalf("infeasible reserved deadline job: start %v + ert %v > deadline %v",
				p.EarliestStart, p.ERT, p.Deadline)
		}
	}
}

func TestNoReservationsByDefault(t *testing.T) {
	g, err := NewJobGen(rand.New(rand.NewSource(10)), job.ClassBatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if p := g.Next(0); p.EarliestStart != 0 {
			t.Fatal("default generator produced a reservation")
		}
	}
}
