package eventlog_test

import (
	"bytes"
	"fmt"
	"time"

	"github.com/smartgrid/aria/internal/eventlog"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/resource"
)

// A Writer plugs in anywhere a core.Observer does and emits one JSON line
// per lifecycle event; Read parses the stream back.
func ExampleWriter() {
	var buf bytes.Buffer
	w := eventlog.NewWriter(&buf)

	j := job.New(job.Profile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   time.Hour,
		Class: job.ClassBatch,
	})
	w.JobSubmitted(time.Minute, 3, j.Profile)
	w.JobAssigned(2*time.Minute, j.UUID, 3, 7, 3600, false)
	j.State = job.StateCompleted
	j.StartedAt = 10 * time.Minute
	j.CompletedAt = 70 * time.Minute
	w.JobCompleted(70*time.Minute, 7, j)
	if err := w.Flush(); err != nil {
		fmt.Println("flush:", err)
		return
	}

	events, err := eventlog.Read(&buf)
	if err != nil {
		fmt.Println("read:", err)
		return
	}
	for _, e := range events {
		fmt.Printf("%s at %.0fs\n", e.Kind, e.At)
	}
	// Output:
	// submitted at 60s
	// assigned at 120s
	// completed at 4200s
}
