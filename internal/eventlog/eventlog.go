// Package eventlog records job lifecycle events as JSON Lines, one event
// per line, and reads them back. It is the durable audit format of live
// deployments (cmd/ariad -events) and a convenient analysis export for
// simulations.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// Kind enumerates loggable events.
type Kind string

// Event kinds.
const (
	KindSubmitted   Kind = "submitted"
	KindAssigned    Kind = "assigned"
	KindRescheduled Kind = "rescheduled"
	KindStarted     Kind = "started"
	KindCompleted   Kind = "completed"
	KindFailed      Kind = "failed"

	// KindSpan carries one causal trace-plane event (trace extension);
	// Span names the protocol step (core.SpanKind).
	KindSpan Kind = "span"
)

// Event is one logged lifecycle event.
type Event struct {
	Kind Kind     `json:"kind"`
	At   float64  `json:"atSec"` // seconds since deployment start
	UUID job.UUID `json:"uuid"`

	Node overlay.NodeID `json:"node,omitempty"` // acting node
	From overlay.NodeID `json:"from,omitempty"` // assignment source
	To   overlay.NodeID `json:"to,omitempty"`   // assignment target

	Cost    float64 `json:"cost,omitempty"`    // winning offer (assigned)
	WaitSec float64 `json:"waitSec,omitempty"` // completed
	ExecSec float64 `json:"execSec,omitempty"` // completed
	Reason  string  `json:"reason,omitempty"`  // failed; conflict verdict (span)

	// Trace-plane fields (kind "span" only).
	Span    core.SpanKind  `json:"span,omitempty"`    // protocol step
	SpanID  uint64         `json:"spanId,omitempty"`  // event's span
	Parent  uint64         `json:"parent,omitempty"`  // causal parent span
	Msg     string         `json:"msg,omitempty"`     // flood message type
	Hop     int            `json:"hop,omitempty"`     // hops from wave origin
	TTL     int            `json:"ttlLeft,omitempty"` // remaining hop budget
	Fanout  int            `json:"fanout,omitempty"`  // neighbors contacted
	Seq     uint64         `json:"seq,omitempty"`     // flood wave sequence
	Origin  overlay.NodeID `json:"origin,omitempty"`  // flood wave origin
	Peer    overlay.NodeID `json:"peer,omitempty"`    // counterpart node
	OldCost float64        `json:"oldCost,omitempty"` // pre-reschedule cost
	Attempt int            `json:"attempt,omitempty"` // retry counter
}

// Writer is a core.Observer that appends one JSON line per event. It is
// safe for concurrent use; write errors are recorded and reported by Err.
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

var _ core.Observer = (*Writer)(nil)

// NewWriter wraps w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Flush drains buffered events and returns the first error seen.
func (l *Writer) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// Err reports the first write error, if any.
func (l *Writer) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Writer) emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(e); err != nil {
		l.err = err
		return
	}
	// Line-buffered: an audit log must survive a crash of the process
	// writing it, so every event reaches the sink immediately.
	if err := l.w.Flush(); err != nil {
		l.err = err
	}
}

// JobSubmitted implements core.Observer.
func (l *Writer) JobSubmitted(at time.Duration, initiator overlay.NodeID, p job.Profile) {
	l.emit(Event{Kind: KindSubmitted, At: at.Seconds(), UUID: p.UUID, Node: initiator})
}

// JobAssigned implements core.Observer.
func (l *Writer) JobAssigned(at time.Duration, uuid job.UUID, from, to overlay.NodeID, cost sched.Cost, rescheduled bool) {
	kind := KindAssigned
	if rescheduled {
		kind = KindRescheduled
	}
	l.emit(Event{Kind: kind, At: at.Seconds(), UUID: uuid, From: from, To: to, Cost: float64(cost)})
}

// JobStarted implements core.Observer.
func (l *Writer) JobStarted(at time.Duration, node overlay.NodeID, uuid job.UUID) {
	l.emit(Event{Kind: KindStarted, At: at.Seconds(), UUID: uuid, Node: node})
}

// JobCompleted implements core.Observer.
func (l *Writer) JobCompleted(at time.Duration, node overlay.NodeID, j *job.Job) {
	l.emit(Event{
		Kind: KindCompleted, At: at.Seconds(), UUID: j.UUID, Node: node,
		WaitSec: j.WaitingTime().Seconds(), ExecSec: j.ExecutionTime().Seconds(),
	})
}

// JobFailed implements core.Observer.
func (l *Writer) JobFailed(at time.Duration, initiator overlay.NodeID, uuid job.UUID, reason string) {
	l.emit(Event{Kind: KindFailed, At: at.Seconds(), UUID: uuid, Node: initiator, Reason: reason})
}

// TraceSpan implements core.TraceObserver, streaming trace-plane events
// into the same JSONL log as the lifecycle events.
func (l *Writer) TraceSpan(ev core.TraceEvent) {
	l.emit(Event{
		Kind: KindSpan, At: ev.At.Seconds(), UUID: ev.UUID, Node: ev.Node,
		Span: ev.Kind, SpanID: ev.Span, Parent: ev.Parent,
		Msg: msgName(ev.Msg), Hop: ev.Hop, TTL: ev.TTL, Fanout: ev.Fanout,
		Seq: ev.Seq, Origin: ev.Origin, Peer: ev.Peer,
		Cost: float64(ev.Cost), OldCost: float64(ev.OldCost), Attempt: ev.Attempt,
		Reason: ev.Reason,
	})
}

// msgName renders a message type, leaving the zero value empty so the JSON
// field is omitted for non-flood spans.
func msgName(t core.MsgType) string {
	if t == 0 {
		return ""
	}
	return t.String()
}

// TraceEvent converts a logged span event back into the engine's form, for
// feeding a parsed log to trace.Check or trace.Forest. Returns false for
// non-span events.
func (e Event) TraceEvent() (core.TraceEvent, bool) {
	if e.Kind != KindSpan {
		return core.TraceEvent{}, false
	}
	return core.TraceEvent{
		At:   time.Duration(e.At * float64(time.Second)),
		Node: e.Node, Kind: e.Span, UUID: e.UUID,
		Span: e.SpanID, Parent: e.Parent,
		Msg: msgType(e.Msg), Hop: e.Hop, TTL: e.TTL, Fanout: e.Fanout,
		Seq: e.Seq, Origin: e.Origin, Peer: e.Peer,
		Cost: sched.Cost(e.Cost), OldCost: sched.Cost(e.OldCost), Attempt: e.Attempt,
		Reason: e.Reason,
	}, true
}

// msgType parses the wire name written by msgName.
func msgType(s string) core.MsgType {
	for t := core.MsgRequest; t.Valid(); t++ {
		if t.String() == s {
			return t
		}
	}
	return 0
}

// Read parses a JSONL event stream, preserving order.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("eventlog line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("eventlog read: %w", err)
	}
	return out, nil
}

// Tee fans events out to several observers.
type Tee []core.Observer

var _ core.Observer = Tee{}

// JobSubmitted implements core.Observer.
func (t Tee) JobSubmitted(at time.Duration, initiator overlay.NodeID, p job.Profile) {
	for _, o := range t {
		o.JobSubmitted(at, initiator, p)
	}
}

// JobAssigned implements core.Observer.
func (t Tee) JobAssigned(at time.Duration, uuid job.UUID, from, to overlay.NodeID, cost sched.Cost, rescheduled bool) {
	for _, o := range t {
		o.JobAssigned(at, uuid, from, to, cost, rescheduled)
	}
}

// JobStarted implements core.Observer.
func (t Tee) JobStarted(at time.Duration, node overlay.NodeID, uuid job.UUID) {
	for _, o := range t {
		o.JobStarted(at, node, uuid)
	}
}

// JobCompleted implements core.Observer.
func (t Tee) JobCompleted(at time.Duration, node overlay.NodeID, j *job.Job) {
	for _, o := range t {
		o.JobCompleted(at, node, j)
	}
}

// JobFailed implements core.Observer.
func (t Tee) JobFailed(at time.Duration, initiator overlay.NodeID, uuid job.UUID, reason string) {
	for _, o := range t {
		o.JobFailed(at, initiator, uuid, reason)
	}
}

// TraceSpan implements core.TraceObserver, forwarding to the members that
// implement it. The Tee always advertises the extension; members that do
// not trace simply never see span events.
func (t Tee) TraceSpan(ev core.TraceEvent) {
	for _, o := range t {
		if tobs, ok := o.(core.TraceObserver); ok {
			tobs.TraceSpan(ev)
		}
	}
}

// AssignRetried implements core.DeliveryObserver, forwarding to the members
// that implement it.
func (t Tee) AssignRetried(at time.Duration, node overlay.NodeID, uuid job.UUID, attempt int) {
	for _, o := range t {
		if dobs, ok := o.(core.DeliveryObserver); ok {
			dobs.AssignRetried(at, node, uuid, attempt)
		}
	}
}

// AssignRecovered implements core.DeliveryObserver, forwarding to the
// members that implement it.
func (t Tee) AssignRecovered(at time.Duration, node overlay.NodeID, uuid job.UUID) {
	for _, o := range t {
		if dobs, ok := o.(core.DeliveryObserver); ok {
			dobs.AssignRecovered(at, node, uuid)
		}
	}
}

// PeerSuspected implements core.MembershipObserver, forwarding to the
// members that implement it.
func (t Tee) PeerSuspected(at time.Duration, node, peer overlay.NodeID) {
	for _, o := range t {
		if mobs, ok := o.(core.MembershipObserver); ok {
			mobs.PeerSuspected(at, node, peer)
		}
	}
}

// PeerRefuted implements core.MembershipObserver, forwarding to the members
// that implement it.
func (t Tee) PeerRefuted(at time.Duration, node, peer overlay.NodeID) {
	for _, o := range t {
		if mobs, ok := o.(core.MembershipObserver); ok {
			mobs.PeerRefuted(at, node, peer)
		}
	}
}

// PeerDead implements core.MembershipObserver, forwarding to the members
// that implement it.
func (t Tee) PeerDead(at time.Duration, node, peer overlay.NodeID) {
	for _, o := range t {
		if mobs, ok := o.(core.MembershipObserver); ok {
			mobs.PeerDead(at, node, peer)
		}
	}
}

// LinkRepaired implements core.MembershipObserver, forwarding to the members
// that implement it.
func (t Tee) LinkRepaired(at time.Duration, node, dead, replacement overlay.NodeID) {
	for _, o := range t {
		if mobs, ok := o.(core.MembershipObserver); ok {
			mobs.LinkRepaired(at, node, dead, replacement)
		}
	}
}

// FloodEscalated implements core.MembershipObserver, forwarding to the
// members that implement it.
func (t Tee) FloodEscalated(at time.Duration, node overlay.NodeID, uuid job.UUID, attempt, ttl int) {
	for _, o := range t {
		if mobs, ok := o.(core.MembershipObserver); ok {
			mobs.FloodEscalated(at, node, uuid, attempt, ttl)
		}
	}
}

// NodeRecovered implements core.RecoveryObserver, forwarding to the members
// that implement it.
func (t Tee) NodeRecovered(at time.Duration, node overlay.NodeID, jobsRecovered, replayRecords int, snapshotAge time.Duration) {
	for _, o := range t {
		if robs, ok := o.(core.RecoveryObserver); ok {
			robs.NodeRecovered(at, node, jobsRecovered, replayRecords, snapshotAge)
		}
	}
}

// DirectoryHit implements core.DirectoryObserver, forwarding to the members
// that implement it.
func (t Tee) DirectoryHit(at time.Duration, node overlay.NodeID, uuid job.UUID, probes int) {
	for _, o := range t {
		if dobs, ok := o.(core.DirectoryObserver); ok {
			dobs.DirectoryHit(at, node, uuid, probes)
		}
	}
}

// DirectoryMiss implements core.DirectoryObserver, forwarding to the members
// that implement it.
func (t Tee) DirectoryMiss(at time.Duration, node overlay.NodeID, uuid job.UUID) {
	for _, o := range t {
		if dobs, ok := o.(core.DirectoryObserver); ok {
			dobs.DirectoryMiss(at, node, uuid)
		}
	}
}

// DirectoryFallback implements core.DirectoryObserver, forwarding to the
// members that implement it.
func (t Tee) DirectoryFallback(at time.Duration, node overlay.NodeID, uuid job.UUID, offers int) {
	for _, o := range t {
		if dobs, ok := o.(core.DirectoryObserver); ok {
			dobs.DirectoryFallback(at, node, uuid, offers)
		}
	}
}

// DirectoryEvicted implements core.DirectoryObserver, forwarding to the
// members that implement it.
func (t Tee) DirectoryEvicted(at time.Duration, node, subject overlay.NodeID, reason string) {
	for _, o := range t {
		if dobs, ok := o.(core.DirectoryObserver); ok {
			dobs.DirectoryEvicted(at, node, subject, reason)
		}
	}
}

// CommitSent implements core.SharedStateObserver, forwarding to the
// members that implement it.
func (t Tee) CommitSent(at time.Duration, node overlay.NodeID, uuid job.UUID, target overlay.NodeID, attempt int) {
	for _, o := range t {
		if sobs, ok := o.(core.SharedStateObserver); ok {
			sobs.CommitSent(at, node, uuid, target, attempt)
		}
	}
}

// CommitConflict implements core.SharedStateObserver, forwarding to the
// members that implement it.
func (t Tee) CommitConflict(at time.Duration, node overlay.NodeID, uuid job.UUID, target overlay.NodeID, reason string, attempt int) {
	for _, o := range t {
		if sobs, ok := o.(core.SharedStateObserver); ok {
			sobs.CommitConflict(at, node, uuid, target, reason, attempt)
		}
	}
}

// CommitGranted implements core.SharedStateObserver, forwarding to the
// members that implement it.
func (t Tee) CommitGranted(at time.Duration, node overlay.NodeID, uuid job.UUID, target overlay.NodeID, attempts int) {
	for _, o := range t {
		if sobs, ok := o.(core.SharedStateObserver); ok {
			sobs.CommitGranted(at, node, uuid, target, attempts)
		}
	}
}

// CommitFallback implements core.SharedStateObserver, forwarding to the
// members that implement it.
func (t Tee) CommitFallback(at time.Duration, node overlay.NodeID, uuid job.UUID, attempts int) {
	for _, o := range t {
		if sobs, ok := o.(core.SharedStateObserver); ok {
			sobs.CommitFallback(at, node, uuid, attempts)
		}
	}
}

// RequestShed implements core.OverloadObserver, forwarding to the members
// that implement it.
func (t Tee) RequestShed(at time.Duration, node overlay.NodeID, uuid job.UUID, depth int) {
	for _, o := range t {
		if oobs, ok := o.(core.OverloadObserver); ok {
			oobs.RequestShed(at, node, uuid, depth)
		}
	}
}

// AssignShed implements core.OverloadObserver, forwarding to the members
// that implement it.
func (t Tee) AssignShed(at time.Duration, node overlay.NodeID, uuid job.UUID, depth int) {
	for _, o := range t {
		if oobs, ok := o.(core.OverloadObserver); ok {
			oobs.AssignShed(at, node, uuid, depth)
		}
	}
}

// ShedRedispatched implements core.OverloadObserver, forwarding to the
// members that implement it.
func (t Tee) ShedRedispatched(at time.Duration, node overlay.NodeID, uuid job.UUID, reflooded bool) {
	for _, o := range t {
		if oobs, ok := o.(core.OverloadObserver); ok {
			oobs.ShedRedispatched(at, node, uuid, reflooded)
		}
	}
}

// PeerBusy implements core.OverloadObserver, forwarding to the members that
// implement it.
func (t Tee) PeerBusy(at time.Duration, node, peer overlay.NodeID) {
	for _, o := range t {
		if oobs, ok := o.(core.OverloadObserver); ok {
			oobs.PeerBusy(at, node, peer)
		}
	}
}

// SubmitRejected implements core.OverloadObserver, forwarding to the members
// that implement it.
func (t Tee) SubmitRejected(at time.Duration, node overlay.NodeID, uuid job.UUID, pending int) {
	for _, o := range t {
		if oobs, ok := o.(core.OverloadObserver); ok {
			oobs.SubmitRejected(at, node, uuid, pending)
		}
	}
}

var (
	_ core.MembershipObserver  = Tee{}
	_ core.RecoveryObserver    = Tee{}
	_ core.DirectoryObserver   = Tee{}
	_ core.OverloadObserver    = Tee{}
	_ core.SharedStateObserver = Tee{}
)
