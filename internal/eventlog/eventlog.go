// Package eventlog records job lifecycle events as JSON Lines, one event
// per line, and reads them back. It is the durable audit format of live
// deployments (cmd/ariad -events) and a convenient analysis export for
// simulations.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/sched"
)

// Kind enumerates loggable events.
type Kind string

// Event kinds.
const (
	KindSubmitted   Kind = "submitted"
	KindAssigned    Kind = "assigned"
	KindRescheduled Kind = "rescheduled"
	KindStarted     Kind = "started"
	KindCompleted   Kind = "completed"
	KindFailed      Kind = "failed"
)

// Event is one logged lifecycle event.
type Event struct {
	Kind Kind     `json:"kind"`
	At   float64  `json:"atSec"` // seconds since deployment start
	UUID job.UUID `json:"uuid"`

	Node overlay.NodeID `json:"node,omitempty"` // acting node
	From overlay.NodeID `json:"from,omitempty"` // assignment source
	To   overlay.NodeID `json:"to,omitempty"`   // assignment target

	Cost    float64 `json:"cost,omitempty"`    // winning offer (assigned)
	WaitSec float64 `json:"waitSec,omitempty"` // completed
	ExecSec float64 `json:"execSec,omitempty"` // completed
	Reason  string  `json:"reason,omitempty"`  // failed
}

// Writer is a core.Observer that appends one JSON line per event. It is
// safe for concurrent use; write errors are recorded and reported by Err.
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

var _ core.Observer = (*Writer)(nil)

// NewWriter wraps w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Flush drains buffered events and returns the first error seen.
func (l *Writer) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// Err reports the first write error, if any.
func (l *Writer) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Writer) emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(e); err != nil {
		l.err = err
		return
	}
	// Line-buffered: an audit log must survive a crash of the process
	// writing it, so every event reaches the sink immediately.
	if err := l.w.Flush(); err != nil {
		l.err = err
	}
}

// JobSubmitted implements core.Observer.
func (l *Writer) JobSubmitted(at time.Duration, initiator overlay.NodeID, p job.Profile) {
	l.emit(Event{Kind: KindSubmitted, At: at.Seconds(), UUID: p.UUID, Node: initiator})
}

// JobAssigned implements core.Observer.
func (l *Writer) JobAssigned(at time.Duration, uuid job.UUID, from, to overlay.NodeID, cost sched.Cost, rescheduled bool) {
	kind := KindAssigned
	if rescheduled {
		kind = KindRescheduled
	}
	l.emit(Event{Kind: kind, At: at.Seconds(), UUID: uuid, From: from, To: to, Cost: float64(cost)})
}

// JobStarted implements core.Observer.
func (l *Writer) JobStarted(at time.Duration, node overlay.NodeID, uuid job.UUID) {
	l.emit(Event{Kind: KindStarted, At: at.Seconds(), UUID: uuid, Node: node})
}

// JobCompleted implements core.Observer.
func (l *Writer) JobCompleted(at time.Duration, node overlay.NodeID, j *job.Job) {
	l.emit(Event{
		Kind: KindCompleted, At: at.Seconds(), UUID: j.UUID, Node: node,
		WaitSec: j.WaitingTime().Seconds(), ExecSec: j.ExecutionTime().Seconds(),
	})
}

// JobFailed implements core.Observer.
func (l *Writer) JobFailed(at time.Duration, initiator overlay.NodeID, uuid job.UUID, reason string) {
	l.emit(Event{Kind: KindFailed, At: at.Seconds(), UUID: uuid, Node: initiator, Reason: reason})
}

// Read parses a JSONL event stream, preserving order.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("eventlog line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("eventlog read: %w", err)
	}
	return out, nil
}

// Tee fans events out to several observers.
type Tee []core.Observer

var _ core.Observer = Tee{}

// JobSubmitted implements core.Observer.
func (t Tee) JobSubmitted(at time.Duration, initiator overlay.NodeID, p job.Profile) {
	for _, o := range t {
		o.JobSubmitted(at, initiator, p)
	}
}

// JobAssigned implements core.Observer.
func (t Tee) JobAssigned(at time.Duration, uuid job.UUID, from, to overlay.NodeID, cost sched.Cost, rescheduled bool) {
	for _, o := range t {
		o.JobAssigned(at, uuid, from, to, cost, rescheduled)
	}
}

// JobStarted implements core.Observer.
func (t Tee) JobStarted(at time.Duration, node overlay.NodeID, uuid job.UUID) {
	for _, o := range t {
		o.JobStarted(at, node, uuid)
	}
}

// JobCompleted implements core.Observer.
func (t Tee) JobCompleted(at time.Duration, node overlay.NodeID, j *job.Job) {
	for _, o := range t {
		o.JobCompleted(at, node, j)
	}
}

// JobFailed implements core.Observer.
func (t Tee) JobFailed(at time.Duration, initiator overlay.NodeID, uuid job.UUID, reason string) {
	for _, o := range t {
		o.JobFailed(at, initiator, uuid, reason)
	}
}
