package eventlog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/sched"
)

func sampleJob() *job.Job {
	j := job.New(job.Profile{
		UUID: "0123456789abcdef0123456789abcdef",
		Req: resource.Requirements{
			Arch: resource.ArchAMD64, OS: resource.OSLinux, MinMemoryGB: 1, MinDiskGB: 1,
		},
		ERT:   time.Hour,
		Class: job.ClassBatch,
	})
	j.State = job.StateCompleted
	j.StartedAt = 30 * time.Minute
	j.CompletedAt = 90 * time.Minute
	return j
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	j := sampleJob()
	w.JobSubmitted(time.Minute, 3, j.Profile)
	w.JobAssigned(2*time.Minute, j.UUID, 3, 7, 1234, false)
	w.JobAssigned(3*time.Minute, j.UUID, 7, 9, 900, true)
	w.JobStarted(30*time.Minute, 9, j.UUID)
	w.JobCompleted(90*time.Minute, 9, j)
	w.JobFailed(91*time.Minute, 3, "deadbeefdeadbeefdeadbeefdeadbeef", "no candidate found")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{
		KindSubmitted, KindAssigned, KindRescheduled,
		KindStarted, KindCompleted, KindFailed,
	}
	if len(events) != len(wantKinds) {
		t.Fatalf("events = %d, want %d", len(events), len(wantKinds))
	}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Fatalf("event %d kind %s, want %s", i, events[i].Kind, k)
		}
	}
	if events[1].From != 3 || events[1].To != 7 || events[1].Cost != 1234 {
		t.Fatalf("assigned event wrong: %+v", events[1])
	}
	if events[4].WaitSec != 1800 || events[4].ExecSec != 3600 {
		t.Fatalf("completed event wrong: %+v", events[4])
	}
	if events[5].Reason != "no candidate found" {
		t.Fatalf("failed event wrong: %+v", events[5])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("Read accepted garbage")
	}
	events, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank stream: %v %v", events, err)
	}
}

// failingWriter errors after n bytes.
type failingWriter struct{ remaining int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errors.New("disk full")
	}
	f.remaining -= len(p)
	return len(p), nil
}

func TestWriterRecordsError(t *testing.T) {
	w := NewWriter(&failingWriter{remaining: 1})
	j := sampleJob()
	for i := 0; i < 1000; i++ {
		w.JobStarted(time.Minute, 1, j.UUID)
	}
	if w.Flush() == nil {
		t.Fatal("write error never surfaced")
	}
	if w.Err() == nil {
		t.Fatal("Err() lost the error")
	}
}

func TestTeeFansOut(t *testing.T) {
	var buf1, buf2 bytes.Buffer
	w1, w2 := NewWriter(&buf1), NewWriter(&buf2)
	tee := Tee{w1, w2}
	var obs core.Observer = tee
	j := sampleJob()
	obs.JobSubmitted(time.Minute, 1, j.Profile)
	obs.JobAssigned(time.Minute, j.UUID, 1, 2, 5, false)
	obs.JobStarted(time.Minute, 2, j.UUID)
	obs.JobCompleted(2*time.Minute, 2, j)
	obs.JobFailed(3*time.Minute, 1, j.UUID, "x")
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("tee outputs diverged")
	}
	events, err := Read(&buf1)
	if err != nil || len(events) != 5 {
		t.Fatalf("tee events: %d %v", len(events), err)
	}
}

func TestEventsOverlaySimulation(t *testing.T) {
	// The writer plugs in anywhere an Observer does — use one as a
	// node's observer and confirm the stream parses.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var _ sched.Policy // keep imports honest
	var _ overlay.NodeID
	j := sampleJob()
	w.JobSubmitted(0, 1, j.Profile)
	w.JobCompleted(time.Hour, 1, j)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].At != 3600 {
		t.Fatalf("events %+v", events)
	}
}
