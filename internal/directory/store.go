package directory

import (
	"sort"
	"time"

	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
)

// Eviction reasons reported through OnEvict.
const (
	EvictCapacity    = "capacity"    // displaced by a fresher entry at full capacity
	EvictStale       = "stale"       // aged past the staleness TTL
	EvictSuspect     = "suspect"     // membership suspicion (re-learnable)
	EvictDead        = "dead"        // terminal dead verdict (tombstoned)
	EvictUnreachable = "unreachable" // transport-level send failure (re-learnable)
	EvictBusy        = "busy"        // peer shed load with a BUSY reply (re-learnable)
)

// entry is one cached digest with the local time it was (effectively)
// learned: now minus the digest's advertised age, so staleness survives
// gossip hops.
type entry struct {
	profile     resource.Profile
	incarnation uint64
	learnedAt   time.Duration
	load        int

	// costEWMA tracks the node's observed ACCEPT costs (exponentially
	// weighted, costEWMAAlpha); costSamples counts observations. A node
	// that consistently bids high — slow hardware the perf index flatters,
	// or a queue the load hint understates — sinks in the candidate
	// ranking even while its digest looks attractive. The EWMA survives
	// digest refreshes (it is knowledge about the node, not about one
	// digest) and dies with the entry on eviction.
	costEWMA    float64
	costSamples int
}

// Store is a bounded, staleness-aware cache of remote node profiles. It is
// not internally synchronized: the protocol engine drives it under the node
// lock, exactly like the rest of the per-node state.
//
// Invalidation is incarnation-aware: a node invalidated as dead leaves a
// tombstone at its last known incarnation, and only a digest with a strictly
// greater incarnation (a restarted instance) is re-admitted. Suspicion and
// unreachability evict without a tombstone — the node may well be alive.
type Store struct {
	capacity int
	ttl      time.Duration

	entries    map[overlay.NodeID]*entry
	tombstones map[overlay.NodeID]uint64

	// expiry is a lazy min-heap of (expiry instant, node) records, one
	// pushed per Learn. sweep pops due records and re-checks the live
	// entry — a refreshed entry simply outlives its stale heap records —
	// so expiry is O(log n) amortized per Learn instead of a full-map
	// scan per read, which dominated directed-discovery profiles at 10k
	// entries.
	expiry expiryHeap

	// sorted caches the node IDs ascending, maintained incrementally, so
	// Gossip and Snapshot stop re-sorting the whole cache per call.
	sorted []overlay.NodeID

	// gossipCursor rotates Gossip samples through the whole cache so
	// repeated probes spread different entries.
	gossipCursor int

	// OnEvict, when set, observes every entry removal with one of the
	// Evict* reasons. It must not call back into the store.
	OnEvict func(node overlay.NodeID, reason string)
}

// expiryRecord marks one Learn's expiry instant for a node.
type expiryRecord struct {
	at   time.Duration
	node overlay.NodeID
}

// expiryHeap is a binary min-heap ordered by (at, node).
type expiryHeap []expiryRecord

func (h expiryHeap) less(i, k int) bool {
	if h[i].at != h[k].at {
		return h[i].at < h[k].at
	}
	return h[i].node < h[k].node
}

func (h *expiryHeap) push(r expiryRecord) {
	a := *h
	a = append(a, r)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	*h = a
}

func (h *expiryHeap) pop() expiryRecord {
	a := *h
	r := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= len(a) {
			break
		}
		if c+1 < len(a) && a.less(c+1, c) {
			c++
		}
		if !a.less(c, i) {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	*h = a
	return r
}

// New returns an empty store holding at most capacity entries, each expiring
// ttl after it was learned (as measured at the original observer).
func New(capacity int, ttl time.Duration) *Store {
	return &Store{
		capacity:   capacity,
		ttl:        ttl,
		entries:    make(map[overlay.NodeID]*entry),
		tombstones: make(map[overlay.NodeID]uint64),
	}
}

// Len reports the number of cached entries (stale ones included until the
// next sweep).
func (s *Store) Len() int { return len(s.entries) }

// Learn folds one digest into the cache, reporting whether it was admitted.
// Rejections: stale on arrival, tombstoned at or below the digest's
// incarnation, older than what is already cached, or staler than everything
// in a full cache.
func (s *Store) Learn(d Digest, now time.Duration) bool {
	if d.Profile.Validate() != nil {
		return false
	}
	learnedAt := now - d.Age
	if learnedAt < 0 {
		learnedAt = 0
	}
	if s.ttl > 0 && now-learnedAt >= s.ttl {
		return false
	}
	if ts, dead := s.tombstones[d.Node]; dead && d.Incarnation <= ts {
		return false
	}
	if cur, ok := s.entries[d.Node]; ok {
		// Same node: a higher incarnation always wins (it is a newer
		// instance); within an incarnation, fresher knowledge wins.
		if d.Incarnation < cur.incarnation ||
			(d.Incarnation == cur.incarnation && learnedAt <= cur.learnedAt) {
			return false
		}
		cur.profile, cur.incarnation, cur.learnedAt, cur.load = d.Profile, d.Incarnation, learnedAt, d.Load
		s.pushExpiry(d.Node, learnedAt)
		return true
	}
	if len(s.entries) >= s.capacity {
		victim, ok := s.stalest()
		if !ok || s.entries[victim].learnedAt >= learnedAt {
			return false // the newcomer is the stalest of them all
		}
		s.remove(victim, EvictCapacity)
	}
	s.entries[d.Node] = &entry{profile: d.Profile, incarnation: d.Incarnation, learnedAt: learnedAt, load: d.Load}
	s.sorted = insertID(s.sorted, d.Node)
	s.pushExpiry(d.Node, learnedAt)
	return true
}

// pushExpiry records when an entry learned at learnedAt goes stale.
func (s *Store) pushExpiry(node overlay.NodeID, learnedAt time.Duration) {
	if s.ttl > 0 {
		s.expiry.push(expiryRecord{at: learnedAt + s.ttl, node: node})
	}
}

func insertID(s []overlay.NodeID, v overlay.NodeID) []overlay.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeID(s []overlay.NodeID, v overlay.NodeID) []overlay.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// BumpLoad optimistically adjusts a cached entry's load hint by delta —
// an initiator that just assigned a job to the node knows its queue grew
// before any gossip can say so. No-op when the node is not cached; the next
// learned digest overwrites the adjustment with observed truth.
func (s *Store) BumpLoad(node overlay.NodeID, delta int) {
	if e, ok := s.entries[node]; ok {
		e.load += delta
		if e.load < 0 {
			e.load = 0
		}
	}
}

// costEWMAAlpha is the weight of the newest ACCEPT-cost observation in the
// per-entry EWMA; ~3 observations dominate the estimate, so a node that
// turns slow is demoted within a few bids.
const costEWMAAlpha = 0.3

// costPenaltyMax clamps the relative cost factor applied in Candidates
// scoring to [1/costPenaltyMax, costPenaltyMax], so one wild bid cannot
// banish (or anoint) a node forever.
const costPenaltyMax = 2.0

// ObserveCost folds one observed ACCEPT cost from node into its cached
// cost EWMA. No-op when the node is not cached — a cost without a digest
// has nothing to attach to, and the next Learn starts the estimate fresh.
func (s *Store) ObserveCost(node overlay.NodeID, cost float64) {
	if cost < 0 {
		return
	}
	e, ok := s.entries[node]
	if !ok {
		return
	}
	if e.costSamples == 0 {
		e.costEWMA = cost
	} else {
		e.costEWMA = costEWMAAlpha*cost + (1-costEWMAAlpha)*e.costEWMA
	}
	e.costSamples++
}

// stalest returns the entry with the oldest learnedAt (largest node ID
// breaking ties, so eviction order is deterministic).
func (s *Store) stalest() (overlay.NodeID, bool) {
	var victim overlay.NodeID
	found := false
	for id, e := range s.entries {
		if !found || e.learnedAt < s.entries[victim].learnedAt ||
			(e.learnedAt == s.entries[victim].learnedAt && id > victim) {
			victim, found = id, true
		}
	}
	return victim, found
}

func (s *Store) remove(node overlay.NodeID, reason string) {
	delete(s.entries, node)
	s.sorted = removeID(s.sorted, node)
	if s.OnEvict != nil {
		s.OnEvict(node, reason)
	}
}

// Evict drops the entry for node (if cached) without a tombstone: the node
// may be alive, and fresh evidence re-admits it immediately.
func (s *Store) Evict(node overlay.NodeID, reason string) {
	if _, ok := s.entries[node]; ok {
		s.remove(node, reason)
	}
}

// Invalidate drops the entry for node and tombstones its incarnation: only
// a strictly greater incarnation (a restarted instance) is ever re-admitted.
// Used for terminal dead verdicts.
func (s *Store) Invalidate(node overlay.NodeID) {
	inc := s.tombstones[node]
	if cur, ok := s.entries[node]; ok && cur.incarnation > inc {
		inc = cur.incarnation
	}
	s.tombstones[node] = inc
	s.Evict(node, EvictDead)
}

// sweep lazily expires entries past the staleness TTL. The store has no
// timers of its own — determinism under the simulator comes from doing all
// expiry on the caller's clock at read time. Due heap records whose entry
// was refreshed or removed since they were pushed are discarded; a live
// stale entry is evicted. Expiry order is (expiry instant, node id), which
// is deterministic for a given cache history.
func (s *Store) sweep(now time.Duration) {
	if s.ttl <= 0 {
		return
	}
	for len(s.expiry) > 0 && s.expiry[0].at <= now {
		r := s.expiry.pop()
		e, ok := s.entries[r.node]
		if !ok {
			continue
		}
		if now-e.learnedAt >= s.ttl {
			s.remove(r.node, EvictStale)
		}
		// Otherwise the entry was refreshed; its newer record is still
		// in the heap.
	}
}

// Candidates returns up to limit cached nodes whose profile satisfies req,
// best first by a time-to-completion proxy: (load+1)/perf ascending — each
// queued job counted as one unit of work, the probe itself as another, all
// divided by the node's speed. Pure load ranking would herd jobs onto slow
// idle nodes; pure perf ranking would pile queues onto the few fast ones.
// Entries with observed ACCEPT-cost history additionally carry a relative
// penalty: the proxy is scaled by the node's cost EWMA over the mean EWMA
// of the matching set (clamped to [1/2, 2]), so a node whose real bids are
// consistently worse than its digest suggests sinks in the ranking. Node
// ID breaks ties, so candidate order is deterministic for a given cache
// state.
func (s *Store) Candidates(req resource.Requirements, limit int, now time.Duration) []Digest {
	s.sweep(now)
	if limit <= 0 {
		return nil
	}
	var out []Digest
	var ewmaSum float64
	var ewmaN int
	for id, e := range s.entries {
		if e.profile.Satisfies(req) {
			out = append(out, Digest{Node: id, Profile: e.profile, Incarnation: e.incarnation, Age: now - e.learnedAt, Load: e.load})
			if e.costSamples > 0 && e.costEWMA > 0 {
				ewmaSum += e.costEWMA
				ewmaN++
			}
		}
	}
	var ewmaMean float64
	if ewmaN > 0 {
		ewmaMean = ewmaSum / float64(ewmaN)
	}
	score := func(d Digest) float64 {
		base := float64(d.Load+1) / d.Profile.PerfIndex
		e := s.entries[d.Node]
		if e == nil || e.costSamples == 0 || e.costEWMA <= 0 || ewmaMean <= 0 {
			return base
		}
		factor := e.costEWMA / ewmaMean
		if factor > costPenaltyMax {
			factor = costPenaltyMax
		} else if factor < 1/costPenaltyMax {
			factor = 1 / costPenaltyMax
		}
		return base * factor
	}
	sort.Slice(out, func(i, k int) bool {
		si, sk := score(out[i]), score(out[k])
		if si != sk {
			return si < sk
		}
		return out[i].Node < out[k].Node
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Gossip returns up to k cached digests for piggybacking on a PING or PONG,
// rotating through the cache across calls so successive probes spread
// different entries.
func (s *Store) Gossip(k int, now time.Duration) []Digest {
	s.sweep(now)
	if k <= 0 || len(s.entries) == 0 {
		return nil
	}
	ids := s.sorted
	if k > len(ids) {
		k = len(ids)
	}
	out := make([]Digest, 0, k)
	for i := 0; i < k; i++ {
		id := ids[(s.gossipCursor+i)%len(ids)]
		e := s.entries[id]
		out = append(out, Digest{Node: id, Profile: e.profile, Incarnation: e.incarnation, Age: now - e.learnedAt, Load: e.load})
	}
	s.gossipCursor = (s.gossipCursor + k) % len(ids)
	return out
}

// Snapshot returns every cached digest in node-ID order, ages measured at
// now — the operator-debugging dump behind `ariactl -directory`.
func (s *Store) Snapshot(now time.Duration) []Digest {
	s.sweep(now)
	out := make([]Digest, 0, len(s.entries))
	for _, id := range s.sorted {
		e := s.entries[id]
		out = append(out, Digest{Node: id, Profile: e.profile, Incarnation: e.incarnation, Age: now - e.learnedAt, Load: e.load})
	}
	return out
}
