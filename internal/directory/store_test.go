package directory

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
)

func profile(perf float64) resource.Profile {
	return resource.Profile{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MemoryGB: 8, DiskGB: 8, PerfIndex: perf,
	}
}

func digest(node overlay.NodeID, perf float64) Digest {
	return Digest{Node: node, Profile: profile(perf)}
}

func req() resource.Requirements {
	return resource.Requirements{
		Arch: resource.ArchAMD64, OS: resource.OSLinux,
		MinMemoryGB: 4, MinDiskGB: 4,
	}
}

func TestLearnAndCandidatesRankByPerf(t *testing.T) {
	s := New(16, time.Hour)
	for _, d := range []Digest{digest(3, 1.2), digest(1, 1.8), digest(2, 1.5)} {
		if !s.Learn(d, 0) {
			t.Fatalf("Learn(%v) rejected", d.Node)
		}
	}
	cands := s.Candidates(req(), 2, time.Minute)
	if len(cands) != 2 || cands[0].Node != 1 || cands[1].Node != 2 {
		t.Fatalf("Candidates = %+v, want nodes 1 then 2 (perf order)", cands)
	}
	if cands[0].Age != time.Minute {
		t.Fatalf("candidate age = %v, want 1m", cands[0].Age)
	}
}

func TestCandidatesRankByCompletionProxy(t *testing.T) {
	s := New(16, time.Hour)
	idle := digest(1, 1.2) // (0+1)/1.2 ≈ 0.83
	busy := digest(2, 1.9) // (2+1)/1.9 ≈ 1.58: speed does not outrun a queue
	busy.Load = 2
	loaded := digest(3, 1.0) // (4+1)/1.0 = 5
	loaded.Load = 4
	for _, d := range []Digest{loaded, busy, idle} {
		if !s.Learn(d, 0) {
			t.Fatalf("Learn(%v) rejected", d.Node)
		}
	}
	cands := s.Candidates(req(), 3, 0)
	if len(cands) != 3 || cands[0].Node != 1 || cands[1].Node != 2 || cands[2].Node != 3 {
		t.Fatalf("Candidates = %+v, want nodes 1, 2, 3 ((load+1)/perf order)", cands)
	}
	// An assignment bumps the hint immediately; the next round re-ranks.
	s.BumpLoad(1, 2) // (2+1)/1.2 = 2.5: now behind node 2
	cands = s.Candidates(req(), 3, 0)
	if cands[0].Node != 2 || cands[1].Node != 1 {
		t.Fatalf("Candidates after bump = %+v, want nodes 2 then 1", cands)
	}
	// A fresher digest overwrites the optimistic adjustment.
	observed := digest(1, 1.2)
	observed.Load = 0
	if !s.Learn(observed, time.Minute) {
		t.Fatal("Learn rejected a fresher digest")
	}
	if cands = s.Candidates(req(), 1, time.Minute); cands[0].Node != 1 {
		t.Fatalf("Candidates after fresh digest = %+v, want node 1 first", cands)
	}
	// Bumping an uncached node is a no-op, and the hint clamps at zero:
	// node 2 drops to load 0, and its higher perf now ranks it first.
	s.BumpLoad(99, 1)
	s.BumpLoad(2, -10)
	if cands = s.Candidates(req(), 1, time.Minute); cands[0].Node != 2 || s.Len() != 3 {
		t.Fatalf("BumpLoad side effects: cands=%+v len=%d", cands, s.Len())
	}
}

func TestCandidatesFilterBySatisfies(t *testing.T) {
	s := New(16, time.Hour)
	mismatch := digest(5, 1.9)
	mismatch.Profile.OS = resource.OSWindows
	small := digest(6, 1.9)
	small.Profile.MemoryGB = 1
	s.Learn(mismatch, 0)
	s.Learn(small, 0)
	s.Learn(digest(7, 1.1), 0)
	cands := s.Candidates(req(), 8, 0)
	if len(cands) != 1 || cands[0].Node != 7 {
		t.Fatalf("Candidates = %+v, want only the satisfying node 7", cands)
	}
}

func TestStalenessExpiry(t *testing.T) {
	var evicted []string
	s := New(16, 10*time.Minute)
	s.OnEvict = func(node overlay.NodeID, reason string) {
		evicted = append(evicted, reason)
	}
	s.Learn(digest(1, 1.5), 0)
	if got := s.Candidates(req(), 8, 9*time.Minute); len(got) != 1 {
		t.Fatalf("entry expired early: %+v", got)
	}
	if got := s.Candidates(req(), 8, 10*time.Minute); len(got) != 0 {
		t.Fatalf("entry outlived its TTL: %+v", got)
	}
	if len(evicted) != 1 || evicted[0] != EvictStale {
		t.Fatalf("evictions = %v, want one %q", evicted, EvictStale)
	}
	// A digest already stale on arrival (gossiped age) is rejected outright.
	old := digest(2, 1.5)
	old.Age = 10 * time.Minute
	if s.Learn(old, 20*time.Minute) {
		t.Fatal("Learn admitted a digest already past the TTL")
	}
}

func TestCapacityEvictsStalest(t *testing.T) {
	var evicted []overlay.NodeID
	s := New(2, time.Hour)
	s.OnEvict = func(node overlay.NodeID, reason string) {
		if reason != EvictCapacity {
			t.Fatalf("eviction reason %q, want %q", reason, EvictCapacity)
		}
		evicted = append(evicted, node)
	}
	s.Learn(digest(1, 1.5), 0)
	s.Learn(digest(2, 1.5), time.Minute)
	s.Learn(digest(3, 1.5), 2*time.Minute) // displaces node 1 (stalest)
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	// A newcomer staler than the whole cache is rejected, not admitted.
	stale := digest(4, 1.5)
	stale.Age = 30 * time.Minute
	if s.Learn(stale, 2*time.Minute) {
		t.Fatal("Learn admitted a newcomer staler than every cached entry")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestIncarnationTombstones(t *testing.T) {
	s := New(16, time.Hour)
	d := digest(1, 1.5)
	d.Incarnation = 2
	s.Learn(d, 0)
	s.Invalidate(1)
	if s.Len() != 0 {
		t.Fatal("Invalidate left the entry cached")
	}
	// Same or lower incarnation stays out; strictly greater re-admits.
	if s.Learn(d, time.Second) {
		t.Fatal("Learn re-admitted a tombstoned incarnation")
	}
	older := d
	older.Incarnation = 1
	if s.Learn(older, time.Second) {
		t.Fatal("Learn re-admitted an older incarnation")
	}
	restarted := d
	restarted.Incarnation = 3
	if !s.Learn(restarted, time.Second) {
		t.Fatal("Learn rejected a strictly newer incarnation")
	}
}

func TestEvictIsRelearnable(t *testing.T) {
	s := New(16, time.Hour)
	s.Learn(digest(1, 1.5), 0)
	s.Evict(1, EvictSuspect)
	if s.Len() != 0 {
		t.Fatal("Evict left the entry cached")
	}
	if !s.Learn(digest(1, 1.5), time.Second) {
		t.Fatal("Learn rejected a node after a tombstone-free eviction")
	}
}

func TestLearnPrefersFresherAndHigherIncarnation(t *testing.T) {
	s := New(16, time.Hour)
	d := digest(1, 1.2)
	s.Learn(d, 10*time.Minute)
	// Older knowledge of the same incarnation loses.
	stale := d
	stale.Age = 5 * time.Minute
	if s.Learn(stale, 10*time.Minute) {
		t.Fatal("Learn replaced a fresher entry with a staler digest")
	}
	// A higher incarnation wins even when its knowledge is older.
	reborn := digest(1, 1.9)
	reborn.Incarnation = 1
	reborn.Age = 5 * time.Minute
	if !s.Learn(reborn, 10*time.Minute) {
		t.Fatal("Learn rejected a higher incarnation")
	}
	cands := s.Candidates(req(), 1, 10*time.Minute)
	if len(cands) != 1 || cands[0].Profile.PerfIndex != 1.9 {
		t.Fatalf("Candidates = %+v, want the reborn profile", cands)
	}
}

func TestGossipRotates(t *testing.T) {
	s := New(16, time.Hour)
	for id := overlay.NodeID(1); id <= 4; id++ {
		s.Learn(digest(id, 1.5), 0)
	}
	seen := make(map[overlay.NodeID]bool)
	for i := 0; i < 2; i++ {
		for _, d := range s.Gossip(2, 0) {
			seen[d.Node] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("two Gossip(2) calls covered %d of 4 entries", len(seen))
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := New(16, time.Hour)
	s.Learn(digest(3, 1.5), 0)
	s.Learn(digest(1, 1.5), time.Minute)
	snap := s.Snapshot(2 * time.Minute)
	if len(snap) != 2 || snap[0].Node != 1 || snap[1].Node != 3 {
		t.Fatalf("Snapshot = %+v, want nodes 1, 3", snap)
	}
	if snap[0].Age != time.Minute || snap[1].Age != 2*time.Minute {
		t.Fatalf("Snapshot ages = %v, %v", snap[0].Age, snap[1].Age)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []Digest{
		{Node: 0, Profile: profile(1.0)},
		{Node: 1<<31 - 1, Profile: resource.Profile{
			Arch: resource.ArchNEC, OS: resource.OSSolaris,
			MemoryGB: 16, DiskGB: 1, PerfIndex: 1.99,
		}, Incarnation: 9, Age: 3600 * time.Second, Load: 17},
	}
	out, err := Decode(Encode(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d -> %d", len(in), len(out))
	}
	for i := range in {
		if out[i].Node != in[i].Node || out[i].Incarnation != in[i].Incarnation ||
			out[i].Age != in[i].Age || out[i].Load != in[i].Load {
			t.Fatalf("digest %d: %+v -> %+v", i, in[i], out[i])
		}
		// PerfIndex is fixed-point quantized; everything else is exact.
		if out[i].Profile.Arch != in[i].Profile.Arch || out[i].Profile.OS != in[i].Profile.OS ||
			out[i].Profile.MemoryGB != in[i].Profile.MemoryGB || out[i].Profile.DiskGB != in[i].Profile.DiskGB {
			t.Fatalf("digest %d profile: %+v -> %+v", i, in[i].Profile, out[i].Profile)
		}
		if diff := out[i].Profile.PerfIndex - in[i].Profile.PerfIndex; diff > 1.0/65536 || diff < -1.0/65536 {
			t.Fatalf("digest %d perf quantization error %v", i, diff)
		}
	}
}

// TestBusyDemotionReadmitsWithFreshLoad pins the overload-control boundary:
// a peer demoted for shedding load (BUSY) is evicted without a tombstone,
// and the very next gossiped digest — even one carrying the same learnedAt
// the evicted entry had — re-admits it with its new load hint. Demotion is a
// routing hint, never a liveness verdict.
func TestBusyDemotionReadmitsWithFreshLoad(t *testing.T) {
	s := New(16, time.Hour)
	var evicted []string
	s.OnEvict = func(_ overlay.NodeID, reason string) { evicted = append(evicted, reason) }

	hot := digest(1, 1.5)
	hot.Load = 1
	if !s.Learn(hot, time.Minute) {
		t.Fatal("Learn rejected the initial digest")
	}
	s.Evict(1, EvictBusy)
	if len(evicted) != 1 || evicted[0] != EvictBusy {
		t.Fatalf("evictions = %v, want one %q", evicted, EvictBusy)
	}
	if got := s.Candidates(req(), 4, time.Minute); len(got) != 0 {
		t.Fatalf("demoted peer still probed: %+v", got)
	}

	// Boundary: the refresh digest is no fresher than the evicted entry
	// (same incarnation, same effective learnedAt). Against a live entry
	// Learn would reject it; after a BUSY demotion it must be admitted.
	cooled := digest(1, 1.5)
	cooled.Load = 7
	if !s.Learn(cooled, time.Minute) {
		t.Fatal("Learn rejected the refresh after a BUSY demotion")
	}
	cands := s.Candidates(req(), 4, time.Minute)
	if len(cands) != 1 || cands[0].Node != 1 {
		t.Fatalf("Candidates = %+v, want the re-admitted peer", cands)
	}
	if cands[0].Load != 7 {
		t.Fatalf("re-admitted load = %d, want the fresh hint 7", cands[0].Load)
	}
	// A dead verdict stays terminal even after the busy/readmit cycle.
	s.Invalidate(1)
	if s.Learn(digest(1, 1.5), 2*time.Minute) {
		t.Fatal("Learn re-admitted a tombstoned peer at the same incarnation")
	}
}

func TestEncodeRoundsAgeUpSoGossipNeverRejuvenates(t *testing.T) {
	// Regression: wire ages are whole seconds. Rounding DOWN let every
	// re-gossip hop shave up to a second off a digest's true age, so under
	// sub-second gossip a dead incarnation's digest could circulate
	// indefinitely, forever refreshing receivers' entries and never hitting
	// the staleness TTL (directory poisoning). Encoded ages must round up.
	for _, tc := range []struct {
		age  time.Duration
		want time.Duration
	}{
		{0, 0},
		{time.Second, time.Second},
		{time.Millisecond, time.Second},
		{1900 * time.Millisecond, 2 * time.Second},
		{3 * time.Second, 3 * time.Second},
	} {
		in := []Digest{{Node: 1, Profile: profile(1.5), Age: tc.age}}
		out, err := Decode(Encode(in))
		if err != nil {
			t.Fatal(err)
		}
		if out[0].Age != tc.want {
			t.Errorf("age %v encoded as %v, want %v", tc.age, out[0].Age, tc.want)
		}
		if out[0].Age < tc.age {
			t.Errorf("age %v SHRANK to %v crossing the wire", tc.age, out[0].Age)
		}
	}
}

func TestObserveCostSinksSlowPeers(t *testing.T) {
	s := New(16, time.Hour)
	fast := digest(1, 1.8) // base (0+1)/1.8 ≈ 0.56: nominally first
	slow := digest(2, 1.5) // base (0+1)/1.5 ≈ 0.67
	for _, d := range []Digest{fast, slow} {
		if !s.Learn(d, 0) {
			t.Fatalf("Learn(%v) rejected", d.Node)
		}
	}
	if cands := s.Candidates(req(), 2, 0); cands[0].Node != 1 {
		t.Fatalf("Candidates = %+v, want node 1 first on the perf index", cands)
	}

	// Node 1 keeps bidding high — hardware the perf index flatters — while
	// node 2's observed ACCEPT costs run low. The EWMA factor (1.5× vs
	// 0.5× the mean) must overcome the digest-only ranking.
	for i := 0; i < 4; i++ {
		s.ObserveCost(1, 30)
		s.ObserveCost(2, 10)
	}
	cands := s.Candidates(req(), 2, 0)
	if len(cands) != 2 || cands[0].Node != 2 || cands[1].Node != 1 {
		t.Fatalf("Candidates = %+v, want the consistently cheap node 2 first", cands)
	}

	// Boundary: the EWMA is knowledge about the node, not about one
	// digest — a refreshed digest must not reset it.
	if !s.Learn(digest(1, 1.8), time.Minute) {
		t.Fatal("Learn rejected a fresher digest")
	}
	if cands = s.Candidates(req(), 2, time.Minute); cands[0].Node != 2 {
		t.Fatalf("Candidates after refresh = %+v, want the EWMA to survive", cands)
	}

	// Eviction kills the estimate with the entry: relearned fresh, node 1
	// ranks by its digest again.
	s.Evict(1, EvictUnreachable)
	if !s.Learn(digest(1, 1.8), 2*time.Minute) {
		t.Fatal("Learn rejected the re-admitted peer")
	}
	if cands = s.Candidates(req(), 2, 2*time.Minute); cands[0].Node != 1 {
		t.Fatalf("Candidates after eviction = %+v, want node 1 restored", cands)
	}
}

func TestObserveCostClampAndNoOps(t *testing.T) {
	s := New(16, time.Hour)
	idle := digest(1, 1.9) // base (0+1)/1.9 ≈ 0.53
	backed := digest(2, 1.0)
	backed.Load = 4 // base (4+1)/1.0 = 5
	for _, d := range []Digest{idle, backed} {
		if !s.Learn(d, 0) {
			t.Fatalf("Learn(%v) rejected", d.Node)
		}
	}
	// One wild bid cannot banish a node: the relative-cost factor clamps
	// at 2×, so 0.53×2 ≈ 1.05 still beats 5×0.5 = 2.5.
	s.ObserveCost(1, 1e6)
	s.ObserveCost(2, 10)
	cands := s.Candidates(req(), 2, 0)
	if len(cands) != 2 || cands[0].Node != 1 {
		t.Fatalf("Candidates = %+v, want node 1 surviving one wild bid (clamped 2×)", cands)
	}
	// Costs without a cached digest, and negative costs, attach nowhere.
	s.ObserveCost(99, 5)
	if s.Len() != 2 {
		t.Fatalf("ObserveCost created an entry: Len = %d", s.Len())
	}
	s.ObserveCost(2, -1)
	if cands = s.Candidates(req(), 2, 0); cands[0].Node != 1 {
		t.Fatalf("Candidates = %+v, negative cost must be ignored", cands)
	}
}
