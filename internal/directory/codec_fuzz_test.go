package directory

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/resource"
)

// FuzzDecodeDigests drives the digest codec with arbitrary payloads:
// whatever the bytes, Decode must either return structurally valid digests
// or an error — never a panic, an invalid profile, or an unbounded
// allocation. Successful decodes must re-encode and decode back unchanged.
func FuzzDecodeDigests(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(Encode(nil))
	f.Add(Encode([]Digest{{
		Node: 7,
		Profile: resource.Profile{
			Arch: resource.ArchAMD64, OS: resource.OSLinux,
			MemoryGB: 8, DiskGB: 16, PerfIndex: 1.5,
		},
		Incarnation: 3,
		Age:         42 * time.Second,
	}}))
	// Future codec version.
	f.Add([]byte{2, 1, 0})
	// Hostile count with no entries behind it.
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff, 0x0f})
	// Truncated mid-entry.
	f.Add(Encode([]Digest{{
		Node: 1,
		Profile: resource.Profile{
			Arch: resource.ArchPOWER, OS: resource.OSBSD,
			MemoryGB: 1, DiskGB: 1, PerfIndex: 1.0,
		},
	}})[:5])

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := Decode(data)
		if err != nil {
			return
		}
		if len(ds) > MaxWireDigests {
			t.Fatalf("Decode returned %d digests, cap %d", len(ds), MaxWireDigests)
		}
		for _, d := range ds {
			if verr := d.Profile.Validate(); verr != nil {
				t.Fatalf("Decode returned invalid profile %+v: %v", d.Profile, verr)
			}
			if d.Age < 0 {
				t.Fatalf("Decode returned negative age %v", d.Age)
			}
		}
		// Round trip: a decoded payload re-encodes to the same digests.
		again, err := Decode(Encode(ds))
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		if len(again) != len(ds) {
			t.Fatalf("round trip changed digest count %d -> %d", len(ds), len(again))
		}
		for i := range ds {
			if again[i] != ds[i] {
				t.Fatalf("round trip changed digest %d: %+v -> %+v", i, ds[i], again[i])
			}
		}
	})
}
