package directory

import (
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/overlay"
)

// TestSweepExpiryHeapBulk is the regression test for the expiry heap that
// replaced the full-map sweep scan: 10k entries learned at staggered
// instants must expire in exactly TTL order, refreshed entries must survive
// their stale heap records (lazy deletion), and the eviction callback must
// fire once per truly expired entry.
func TestSweepExpiryHeapBulk(t *testing.T) {
	const n = 10_000
	const ttl = 10 * time.Minute
	evictions := map[overlay.NodeID]int{}
	s := New(n, ttl)
	s.OnEvict = func(node overlay.NodeID, reason string) {
		if reason != EvictStale {
			t.Fatalf("node %d evicted for %q, want %q", node, reason, EvictStale)
		}
		evictions[node]++
	}
	// Node i learned at i seconds; expiry due at i seconds + TTL.
	for i := 0; i < n; i++ {
		if !s.Learn(digest(overlay.NodeID(i), 1.5), time.Duration(i)*time.Second) {
			t.Fatalf("Learn(%d) rejected", i)
		}
	}
	// Refresh the first half at t = n seconds: their original heap records
	// go stale but must not evict them when they come due.
	refreshAt := n * time.Second
	for i := 0; i < n/2; i++ {
		if !s.Learn(digest(overlay.NodeID(i), 1.5), refreshAt) {
			t.Fatalf("refresh Learn(%d) rejected", i)
		}
	}
	// Advance to the instant the unrefreshed half (learned in [n/2, n)
	// seconds) has fully expired while the refreshed half, due exactly one
	// second later, has not. Gossip sweeps before returning.
	mid := refreshAt + ttl - time.Second
	s.Gossip(0, mid)
	if s.Len() != n/2 {
		t.Fatalf("after first sweep Len = %d, want %d", s.Len(), n/2)
	}
	for i := n / 2; i < n; i++ {
		if evictions[overlay.NodeID(i)] != 1 {
			t.Fatalf("node %d evicted %d times, want 1", i, evictions[overlay.NodeID(i)])
		}
	}
	for i := 0; i < n/2; i++ {
		if evictions[overlay.NodeID(i)] != 0 {
			t.Fatalf("refreshed node %d evicted prematurely", i)
		}
	}
	// One TTL past the refresh instant everything is gone.
	s.Gossip(0, refreshAt+ttl)
	if s.Len() != 0 {
		t.Fatalf("after final sweep Len = %d, want 0", s.Len())
	}
	if len(evictions) != n {
		t.Fatalf("%d nodes saw evictions, want %d", len(evictions), n)
	}
}

// BenchmarkCandidates10k ranks an 8-candidate shortlist out of 10k live
// entries — the hot read path a directed initiator hits per submission.
func BenchmarkCandidates10k(b *testing.B) {
	const n = 10_000
	s := New(n, time.Hour)
	for i := 0; i < n; i++ {
		d := digest(overlay.NodeID(i), 1.0+float64(i%7)/10)
		d.Load = i % 5
		s.Learn(d, 0)
	}
	r := req()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Candidates(r, 8, time.Minute); len(got) != 8 {
			b.Fatalf("got %d candidates", len(got))
		}
	}
}

// BenchmarkLearnExpireChurn10k measures the amortized Learn cost while the
// expiry heap is actively draining: each round refreshes a rotating tenth
// of 10k entries as the clock advances one TTL per ten rounds, so every
// entry is perpetually near expiry. Before the heap this path rescanned the
// whole map per sweep.
func BenchmarkLearnExpireChurn10k(b *testing.B) {
	const n = 10_000
	const ttl = 10 * time.Minute
	s := New(n, ttl)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		s.Learn(digest(overlay.NodeID(i), 1.5), now)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += ttl / 10
		base := (i % 10) * (n / 10)
		for k := 0; k < n/10; k++ {
			s.Learn(digest(overlay.NodeID(base+k), 1.5), now)
		}
		s.Gossip(8, now)
	}
}
