// Package directory implements the gossip-fed resource directory: a
// bounded, staleness-aware cache of remote node profiles that lets an
// initiator probe known-matching candidates by unicast before falling back
// to the classic REQUEST flood.
//
// Digests travel as a compact binary payload piggybacked on membership
// PING/PONG gossip and on ACCEPT/INFORM protocol traffic. The codec favors
// density over generality: profile enums fit one byte each, sizes and ages
// are uvarints, and the performance index is a 16-bit fixed-point fraction —
// a full digest is typically 8–12 bytes on the wire.
package directory

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
)

// Digest is one directory entry as exchanged on the wire: a node's identity,
// its resource profile, the incarnation that produced it (restart counter,
// for invalidation ordering), how stale the sender's knowledge already was
// at encode time, and the subject's load (running plus queued jobs) at that
// moment. Receivers age their copy by Age so a digest never gets fresher by
// traveling.
type Digest struct {
	Node        overlay.NodeID
	Profile     resource.Profile
	Incarnation uint64
	Age         time.Duration

	// Load is the subject's running+queued job count when the digest was
	// made — the hint directed discovery ranks candidates by. It is as
	// stale as Age says; live ACCEPT costs, not the hint, decide the
	// assignment.
	Load int
}

// codecVersion is the digest payload format version; decoders reject
// payloads from the future.
const codecVersion = 1

// MaxWireDigests bounds how many digests one payload may carry; decoders
// reject anything larger, so a hostile count cannot drive allocation.
const MaxWireDigests = 128

// maxSizeGB bounds the memory and disk fields on decode: far above any
// admissible profile, low enough that hostile uvarints cannot smuggle
// absurd capacities into the cache.
const maxSizeGB = 1 << 20

// maxAgeSec bounds the age field on decode (about 12 days): a hostile age
// simply makes the entry stale, but the bound keeps the duration arithmetic
// far from overflow.
const maxAgeSec = 1 << 20

// maxLoad bounds the load hint on decode: far above any plausible queue,
// low enough that a hostile value cannot skew ranking arithmetic.
const maxLoad = 1 << 20

// perfScale is the fixed-point denominator for PerfIndex: the index lives in
// [1,2), so (perf-1)·65536 always fits uint16 and decodes back into range.
const perfScale = 65536

// Encode packs digests into the wire payload. Entries beyond MaxWireDigests
// are dropped (callers gossip small samples; the cap is a codec guarantee,
// not a scheduling decision).
func Encode(ds []Digest) []byte {
	if len(ds) > MaxWireDigests {
		ds = ds[:MaxWireDigests]
	}
	buf := make([]byte, 0, 2+12*len(ds))
	buf = append(buf, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ds)))
	for _, d := range ds {
		buf = binary.AppendUvarint(buf, uint64(uint32(d.Node)))
		buf = append(buf, byte(d.Profile.Arch), byte(d.Profile.OS))
		buf = binary.AppendUvarint(buf, uint64(d.Profile.MemoryGB))
		buf = binary.AppendUvarint(buf, uint64(d.Profile.DiskGB))
		perf := d.Profile.PerfIndex - 1
		if perf < 0 {
			perf = 0
		}
		fixed := uint64(perf * perfScale)
		if fixed > perfScale-1 {
			fixed = perfScale - 1
		}
		buf = binary.AppendUvarint(buf, fixed)
		buf = binary.AppendUvarint(buf, d.Incarnation)
		// Wire ages are whole seconds, rounded UP: truncating down would
		// let every re-gossip hop shave up to a second off a digest's true
		// age, and under sub-second gossip a dead incarnation's digest can
		// then circulate forever without ever reaching the staleness TTL
		// (each hop's "fresher" copy refreshes the receiver's entry). Over-
		// aging by at most a second per hop errs toward expiry instead.
		age := int64((d.Age + time.Second - 1) / time.Second)
		if age < 0 {
			age = 0
		}
		if age > maxAgeSec {
			age = maxAgeSec
		}
		buf = binary.AppendUvarint(buf, uint64(age))
		load := d.Load
		if load < 0 {
			load = 0
		}
		if load > maxLoad {
			load = maxLoad
		}
		buf = binary.AppendUvarint(buf, uint64(load))
	}
	return buf
}

// Decode unpacks a digest payload, validating every field: unknown versions,
// truncated entries, out-of-range enums, absurd sizes, and hostile counts
// all fail cleanly. A nil or empty payload decodes to no digests.
func Decode(b []byte) ([]Digest, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if b[0] != codecVersion {
		return nil, fmt.Errorf("directory digest version %d, want %d", b[0], codecVersion)
	}
	b = b[1:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("directory digest count unreadable")
	}
	if count > MaxWireDigests {
		return nil, fmt.Errorf("directory digest count %d exceeds cap %d", count, MaxWireDigests)
	}
	b = b[n:]
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("truncated directory digest")
		}
		b = b[n:]
		return v, nil
	}
	out := make([]Digest, 0, count)
	for i := uint64(0); i < count; i++ {
		id, err := uvarint()
		if err != nil {
			return nil, err
		}
		if id > 1<<31-1 {
			return nil, fmt.Errorf("directory digest node id %d out of range", id)
		}
		if len(b) < 2 {
			return nil, fmt.Errorf("truncated directory digest")
		}
		arch, osKind := resource.Architecture(b[0]), resource.OS(b[1])
		b = b[2:]
		mem, err := uvarint()
		if err != nil {
			return nil, err
		}
		disk, err := uvarint()
		if err != nil {
			return nil, err
		}
		fixed, err := uvarint()
		if err != nil {
			return nil, err
		}
		inc, err := uvarint()
		if err != nil {
			return nil, err
		}
		age, err := uvarint()
		if err != nil {
			return nil, err
		}
		load, err := uvarint()
		if err != nil {
			return nil, err
		}
		if fixed > perfScale-1 {
			return nil, fmt.Errorf("directory digest perf %d out of range", fixed)
		}
		if mem == 0 || mem > maxSizeGB || disk == 0 || disk > maxSizeGB {
			return nil, fmt.Errorf("directory digest sizes %d/%d GB out of range", mem, disk)
		}
		if age > maxAgeSec {
			return nil, fmt.Errorf("directory digest age %d out of range", age)
		}
		if load > maxLoad {
			return nil, fmt.Errorf("directory digest load %d out of range", load)
		}
		d := Digest{
			Node: overlay.NodeID(id),
			Profile: resource.Profile{
				Arch:      arch,
				OS:        osKind,
				MemoryGB:  int(mem),
				DiskGB:    int(disk),
				PerfIndex: 1 + float64(fixed)/perfScale,
			},
			Incarnation: inc,
			Age:         time.Duration(age) * time.Second,
			Load:        int(load),
		}
		if err := d.Profile.Validate(); err != nil {
			return nil, fmt.Errorf("directory digest: %w", err)
		}
		out = append(out, d)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("directory digest payload has %d trailing bytes", len(b))
	}
	return out, nil
}
