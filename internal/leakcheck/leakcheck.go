// Package leakcheck provides a hand-rolled goroutine-leak gate for test
// mains: after a package's tests pass, it scans the process's goroutine
// stacks and fails the run if any goroutine rooted in this module is still
// alive. Packages that spin up real goroutines (the wire transport, the
// gateway) wire it in with
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.Main(m)) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// modulePrefix identifies goroutines this module created: any stack frame
// (or creator frame) inside the module counts.
const modulePrefix = "github.com/smartgrid/aria/"

// settleTimeout bounds how long Main waits for straggler goroutines to
// finish on their own. Sender goroutines may legitimately outlive a test by
// a dial-retry ladder, so the grace period is generous; a true leak (a
// goroutine parked forever) exhausts it regardless.
const settleTimeout = 10 * time.Second

// runner is the subset of *testing.M that Main needs. Depending on the
// interface keeps the testing package out of non-test builds.
type runner interface{ Run() int }

// Main runs the package's tests and then enforces the leak gate, returning
// the process exit code. Leak stacks go to stderr.
func Main(m runner) int {
	code := m.Run()
	if code != 0 {
		return code // test failures take precedence over leak noise
	}
	leaked := settle()
	if len(leaked) == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running after tests:\n\n%s\n",
		len(leaked), strings.Join(leaked, "\n\n"))
	return 1
}

// Check enforces the leak gate outside a test main: it waits for module
// goroutines to settle and returns the stacks of any that remain. Soak
// harness processes call it right before exiting so a connection-cache or
// pump leak fails the run even when no test is driving.
func Check() []string {
	return settle()
}

// settle polls until no module goroutines remain or the grace period runs
// out, returning whatever is left.
func settle() []string {
	deadline := time.Now().Add(settleTimeout)
	for {
		leaked := moduleGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// moduleGoroutines returns the stacks of live goroutines attributable to
// this module, excluding the calling goroutine.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<21)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if isModuleGoroutine(g) {
			out = append(out, g)
		}
	}
	return out
}

func isModuleGoroutine(stack string) bool {
	if !strings.Contains(stack, modulePrefix) {
		return false
	}
	// Skip ourselves (the goroutine running the leak check) and the test
	// harness's main goroutine, whose stack mentions the package under
	// test only via TestMain.
	if strings.Contains(stack, "leakcheck.moduleGoroutines") ||
		strings.Contains(stack, "testing.(*M).Run") {
		return false
	}
	return true
}
