// Package faults provides a deterministic fault-injection plane for the
// message transports: per-link message drop, duplication, extra delivery
// jitter, timed network partitions (two-way or asymmetric one-way), and the
// gray-failure modes real grids suffer — slow-peer throttling and stalled
// (frozen-receiver) windows.
//
// The paper evaluates ARiA on a reliable network; this package models the
// unreliable one real grids run on. Every decision is drawn from a seeded
// random source supplied by the caller (the scenario runner derives it from
// the run seed), so a faulty run is exactly as reproducible as a clean one.
package faults

import (
	"fmt"
	"sync"
	"time"

	"github.com/smartgrid/aria/internal/overlay"
)

// Rand is the subset of *math/rand.Rand the model draws from; accepting an
// interface keeps the package mockable and makes the no-global-randomness
// rule explicit.
type Rand interface {
	Float64() float64
	Int63n(n int64) int64
}

// Config parameterizes a LinkModel. The zero value injects no faults.
type Config struct {
	// DropProb is the probability that an individual transmission is
	// lost in flight. Applied per message copy, independently.
	DropProb float64

	// DupProb is the probability that a transmission is delivered twice
	// (e.g. a retransmitting middlebox). Duplicates take independent
	// extra delays, so copies may reorder.
	DupProb float64

	// MaxExtraDelay adds uniform [0, MaxExtraDelay) jitter on top of the
	// transport's base latency, independently per delivered copy.
	MaxExtraDelay time.Duration

	// Partitions lists timed windows during which a node subset is cut
	// off from the rest of the overlay (messages crossing the cut are
	// dropped in both directions; messages within a side are unaffected).
	Partitions []Partition

	// Slowdowns lists timed windows during which every transmission
	// touching one of the listed nodes (as sender or receiver) gains
	// ExtraDelay of latency on top of the transport's base latency — the
	// slow-peer gray failure: degraded, never disconnected.
	Slowdowns []Slowdown

	// Stalls lists timed windows during which the listed nodes stop
	// processing inbound traffic without refusing it: transmissions to a
	// stalled node are buffered and delivered when the window ends, all at
	// once — the SIGSTOP analogue. The stalled node's own sends and local
	// timers are unaffected (a half-frozen process, which is exactly what
	// makes the failure gray).
	Stalls []Stall
}

// Partition isolates the listed nodes from everyone else during [Start, End).
type Partition struct {
	Start    time.Duration
	End      time.Duration
	Isolated []overlay.NodeID

	// OneWay, when set, severs only transmissions *toward* the isolated
	// set: isolated nodes can still send out across the cut, but nothing
	// reaches them (the "deaf node" asymmetric partition). When false the
	// cut drops both directions.
	OneWay bool
}

// Slowdown degrades the listed nodes' links during [Start, End): every
// transmission they send or receive is delayed by ExtraDelay.
type Slowdown struct {
	Start      time.Duration
	End        time.Duration
	Nodes      []overlay.NodeID
	ExtraDelay time.Duration
}

// Stall freezes the listed nodes' receive path during [Start, End):
// transmissions toward them are held and delivered at End.
type Stall struct {
	Start time.Duration
	End   time.Duration
	Nodes []overlay.NodeID
}

// Validate reports the first structural problem.
func (c Config) Validate() error {
	switch {
	case c.DropProb < 0 || c.DropProb >= 1:
		return fmt.Errorf("drop probability %v outside [0, 1)", c.DropProb)
	case c.DupProb < 0 || c.DupProb >= 1:
		return fmt.Errorf("duplication probability %v outside [0, 1)", c.DupProb)
	case c.MaxExtraDelay < 0:
		return fmt.Errorf("max extra delay %v must be non-negative", c.MaxExtraDelay)
	}
	for i, p := range c.Partitions {
		switch {
		case p.Start < 0:
			return fmt.Errorf("partition %d: negative start %v", i, p.Start)
		case p.End <= p.Start:
			return fmt.Errorf("partition %d: window [%v, %v) is empty", i, p.Start, p.End)
		case len(p.Isolated) == 0:
			return fmt.Errorf("partition %d: no isolated nodes", i)
		}
	}
	for i, s := range c.Slowdowns {
		switch {
		case s.Start < 0:
			return fmt.Errorf("slowdown %d: negative start %v", i, s.Start)
		case s.End <= s.Start:
			return fmt.Errorf("slowdown %d: window [%v, %v) is empty", i, s.Start, s.End)
		case len(s.Nodes) == 0:
			return fmt.Errorf("slowdown %d: no nodes", i)
		case s.ExtraDelay <= 0:
			return fmt.Errorf("slowdown %d: extra delay %v must be positive", i, s.ExtraDelay)
		}
	}
	for i, s := range c.Stalls {
		switch {
		case s.Start < 0:
			return fmt.Errorf("stall %d: negative start %v", i, s.Start)
		case s.End <= s.Start:
			return fmt.Errorf("stall %d: window [%v, %v) is empty", i, s.Start, s.End)
		case len(s.Nodes) == 0:
			return fmt.Errorf("stall %d: no nodes", i)
		}
	}
	return nil
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.DropProb > 0 || c.DupProb > 0 || c.MaxExtraDelay > 0 ||
		len(c.Partitions) > 0 || len(c.Slowdowns) > 0 || len(c.Stalls) > 0
}

// Stats counts what the fault plane did to a run's traffic.
type Stats struct {
	// Sent is the number of transmissions presented to the model.
	Sent int
	// Dropped counts transmissions lost to random per-link loss.
	Dropped int
	// PartitionDropped counts transmissions lost to an active partition.
	PartitionDropped int
	// Duplicated counts transmissions delivered twice.
	Duplicated int
	// Slowed counts transmissions delayed by an active slowdown window.
	Slowed int
	// Stalled counts transmissions held by an active stall window.
	Stalled int
}

// Lost is the total number of transmissions that never arrived.
func (s Stats) Lost() int { return s.Dropped + s.PartitionDropped }

// Outcome describes the fate of one transmission: the message is delivered
// once per entry of ExtraDelays (each after the transport's base latency
// plus that extra delay); an empty slice means the message was dropped.
type Outcome struct {
	ExtraDelays []time.Duration
}

// Delivered reports whether at least one copy arrives.
func (o Outcome) Delivered() bool { return len(o.ExtraDelays) > 0 }

// LinkModel decides the fate of every transmission on a cluster's links.
// It is safe for concurrent use (the in-process transport sends from many
// goroutines); under the single-threaded simulator the lock is uncontended
// and the draw order — hence the run — stays deterministic.
type LinkModel struct {
	cfg     Config
	keySeed uint64

	mu       sync.Mutex
	rng      Rand
	isolated []map[overlay.NodeID]bool // parallel to cfg.Partitions
	slowed   []map[overlay.NodeID]bool // parallel to cfg.Slowdowns
	stalled  []map[overlay.NodeID]bool // parallel to cfg.Stalls
	stats    Stats
}

// NewLinkModel builds a model over the given seeded random source.
func NewLinkModel(cfg Config, rng Rand) (*LinkModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("fault config: %w", err)
	}
	if rng == nil {
		return nil, fmt.Errorf("fault model needs a seeded random source")
	}
	l := &LinkModel{cfg: cfg, rng: rng}
	for _, p := range cfg.Partitions {
		l.isolated = append(l.isolated, idSet(p.Isolated))
	}
	for _, s := range cfg.Slowdowns {
		l.slowed = append(l.slowed, idSet(s.Nodes))
	}
	for _, s := range cfg.Stalls {
		l.stalled = append(l.stalled, idSet(s.Nodes))
	}
	return l, nil
}

// idSet builds a membership set from a node list.
func idSet(ids []overlay.NodeID) map[overlay.NodeID]bool {
	set := make(map[overlay.NodeID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// Plan decides what happens to one transmission from → to at the given
// time, updating the counters.
func (l *LinkModel) Plan(now time.Duration, from, to overlay.NodeID) Outcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Sent++
	if l.severed(now, from, to) {
		l.stats.PartitionDropped++
		return Outcome{}
	}
	if l.cfg.DropProb > 0 && l.rng.Float64() < l.cfg.DropProb {
		l.stats.Dropped++
		return Outcome{}
	}
	copies := 1
	if l.cfg.DupProb > 0 && l.rng.Float64() < l.cfg.DupProb {
		copies = 2
		l.stats.Duplicated++
	}
	gray, slowed, stalled := l.grayExtra(now, from, to)
	if slowed {
		l.stats.Slowed++
	}
	if stalled {
		l.stats.Stalled++
	}
	out := Outcome{ExtraDelays: make([]time.Duration, copies)}
	for i := range out.ExtraDelays {
		out.ExtraDelays[i] = gray
		if l.cfg.MaxExtraDelay > 0 {
			out.ExtraDelays[i] += time.Duration(l.rng.Int63n(int64(l.cfg.MaxExtraDelay)))
		}
	}
	return out
}

// grayExtra computes the deterministic gray-failure delay on one
// transmission: slowdown windows touching either endpoint add their latency,
// and a stall window covering the receiver holds the message until the
// window ends. The method reads only immutable state, so keyed (lock-free)
// and sequential planners share it.
func (l *LinkModel) grayExtra(now time.Duration, from, to overlay.NodeID) (extra time.Duration, slowed, stalled bool) {
	for i, s := range l.cfg.Slowdowns {
		if now >= s.Start && now < s.End && (l.slowed[i][from] || l.slowed[i][to]) {
			extra += s.ExtraDelay
			slowed = true
		}
	}
	for i, s := range l.cfg.Stalls {
		if now >= s.Start && now < s.End && l.stalled[i][to] {
			extra += s.End - now
			stalled = true
		}
	}
	return extra, slowed, stalled
}

// SetKeySeed arms the keyed draw path (PlanKeyed) with the run seed it
// mixes into every per-transmission hash. Call once, before the run.
func (l *LinkModel) SetKeySeed(seed uint64) {
	l.keySeed = seed
}

// PlanKeyed is Plan for parallel (sharded-kernel) runs: instead of drawing
// from the shared sequential source — whose draw order would depend on the
// nondeterministic interleaving of shard workers — every transmission's
// fate is a pure hash of (key seed, link, per-sender transmission index).
// Two runs with the same seed therefore inject identical faults regardless
// of shard count or GOMAXPROCS, and concurrent callers never contend on a
// random source. Stats counters remain mutex-guarded (they are not
// behavior-affecting).
func (l *LinkModel) PlanKeyed(now time.Duration, from, to overlay.NodeID, key uint64) Outcome {
	l.mu.Lock()
	l.stats.Sent++
	severed := l.severed(now, from, to)
	if severed {
		l.stats.PartitionDropped++
	}
	l.mu.Unlock()
	if severed {
		return Outcome{}
	}
	r := hashRand{state: mix64(l.keySeed ^ mix64(uint64(uint32(from))) ^ mix64(uint64(uint32(to))<<1) ^ key)}
	if l.cfg.DropProb > 0 && r.Float64() < l.cfg.DropProb {
		l.mu.Lock()
		l.stats.Dropped++
		l.mu.Unlock()
		return Outcome{}
	}
	copies := 1
	if l.cfg.DupProb > 0 && r.Float64() < l.cfg.DupProb {
		copies = 2
		l.mu.Lock()
		l.stats.Duplicated++
		l.mu.Unlock()
	}
	gray, slowed, stalled := l.grayExtra(now, from, to)
	if slowed || stalled {
		l.mu.Lock()
		if slowed {
			l.stats.Slowed++
		}
		if stalled {
			l.stats.Stalled++
		}
		l.mu.Unlock()
	}
	out := Outcome{ExtraDelays: make([]time.Duration, copies)}
	for i := range out.ExtraDelays {
		out.ExtraDelays[i] = gray
		if l.cfg.MaxExtraDelay > 0 {
			out.ExtraDelays[i] += time.Duration(r.Int63n(int64(l.cfg.MaxExtraDelay)))
		}
	}
	return out
}

// hashRand is a tiny SplitMix64 stream seeded per transmission; it backs
// the keyed fault draws with no shared state at all.
type hashRand struct{ state uint64 }

func (r *hashRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *hashRand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Int63n returns a uniform value in [0, n); the modulo bias is negligible
// for the sub-second ranges fault jitter uses.
func (r *hashRand) Int63n(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// mix64 is the SplitMix64 finalizer (a bijective avalanche over uint64).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// severed reports whether an active partition separates from and to. A
// two-way partition drops anything crossing the cut; a one-way partition
// drops only traffic entering the isolated set (the isolated nodes stay
// able to send out, making the failure asymmetric). Caller holds the lock.
func (l *LinkModel) severed(now time.Duration, from, to overlay.NodeID) bool {
	for i, p := range l.cfg.Partitions {
		if now < p.Start || now >= p.End {
			continue
		}
		if p.OneWay {
			if !l.isolated[i][from] && l.isolated[i][to] {
				return true
			}
			continue
		}
		if l.isolated[i][from] != l.isolated[i][to] {
			return true
		}
	}
	return false
}

// Stats snapshots the counters.
func (l *LinkModel) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
