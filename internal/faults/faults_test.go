package faults

import (
	"math/rand"
	"testing"
	"time"

	"github.com/smartgrid/aria/internal/overlay"
)

func TestConfigValidate(t *testing.T) {
	good := Config{
		DropProb: 0.05, DupProb: 0.01, MaxExtraDelay: time.Second,
		Partitions: []Partition{{Start: time.Hour, End: 2 * time.Hour, Isolated: []overlay.NodeID{1}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative drop", func(c *Config) { c.DropProb = -0.1 }},
		{"certain drop", func(c *Config) { c.DropProb = 1 }},
		{"negative dup", func(c *Config) { c.DupProb = -0.1 }},
		{"negative delay", func(c *Config) { c.MaxExtraDelay = -time.Second }},
		{"empty window", func(c *Config) { c.Partitions[0].End = c.Partitions[0].Start }},
		{"no isolated nodes", func(c *Config) { c.Partitions[0].Isolated = nil }},
		{"negative start", func(c *Config) { c.Partitions[0].Start = -time.Second }},
		{"slowdown empty window", func(c *Config) {
			c.Slowdowns = []Slowdown{{Start: time.Hour, End: time.Hour, Nodes: []overlay.NodeID{1}, ExtraDelay: time.Second}}
		}},
		{"slowdown no nodes", func(c *Config) {
			c.Slowdowns = []Slowdown{{End: time.Hour, ExtraDelay: time.Second}}
		}},
		{"slowdown zero delay", func(c *Config) {
			c.Slowdowns = []Slowdown{{End: time.Hour, Nodes: []overlay.NodeID{1}}}
		}},
		{"stall empty window", func(c *Config) {
			c.Stalls = []Stall{{Start: time.Hour, End: time.Hour, Nodes: []overlay.NodeID{1}}}
		}},
		{"stall no nodes", func(c *Config) {
			c.Stalls = []Stall{{End: time.Hour}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bad := good
			bad.Partitions = append([]Partition(nil), good.Partitions...)
			tt.mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("Validate accepted broken config")
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for _, c := range []Config{
		{DropProb: 0.1},
		{DupProb: 0.1},
		{MaxExtraDelay: time.Second},
		{Partitions: []Partition{{End: time.Second, Isolated: []overlay.NodeID{1}}}},
		{Slowdowns: []Slowdown{{End: time.Second, Nodes: []overlay.NodeID{1}, ExtraDelay: time.Second}}},
		{Stalls: []Stall{{End: time.Second, Nodes: []overlay.NodeID{1}}}},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v reports disabled", c)
		}
	}
}

func TestNewLinkModelRejects(t *testing.T) {
	if _, err := NewLinkModel(Config{DropProb: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted invalid config")
	}
	if _, err := NewLinkModel(Config{}, nil); err == nil {
		t.Fatal("accepted nil random source")
	}
}

func TestDropRate(t *testing.T) {
	lm, err := NewLinkModel(Config{DropProb: 0.2}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	delivered := 0
	for i := 0; i < n; i++ {
		if lm.Plan(0, 1, 2).Delivered() {
			delivered++
		}
	}
	s := lm.Stats()
	if s.Sent != n || s.Dropped != n-delivered {
		t.Fatalf("stats %+v inconsistent with %d deliveries", s, delivered)
	}
	rate := float64(s.Dropped) / float64(n)
	if rate < 0.18 || rate > 0.22 {
		t.Fatalf("drop rate %.3f far from configured 0.2", rate)
	}
}

func TestDuplicationAndJitter(t *testing.T) {
	lm, err := NewLinkModel(Config{DupProb: 0.5, MaxExtraDelay: time.Second}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for i := 0; i < 5000; i++ {
		out := lm.Plan(0, 1, 2)
		switch len(out.ExtraDelays) {
		case 1:
		case 2:
			dups++
		default:
			t.Fatalf("unexpected copy count %d", len(out.ExtraDelays))
		}
		for _, d := range out.ExtraDelays {
			if d < 0 || d >= time.Second {
				t.Fatalf("extra delay %v outside [0, 1s)", d)
			}
		}
	}
	if s := lm.Stats(); s.Duplicated != dups {
		t.Fatalf("stats count %d duplicates, observed %d", s.Duplicated, dups)
	}
	if rate := float64(dups) / 5000; rate < 0.45 || rate > 0.55 {
		t.Fatalf("duplication rate %.3f far from configured 0.5", rate)
	}
}

func TestPartitionSeversOnlyTheCut(t *testing.T) {
	lm, err := NewLinkModel(Config{
		Partitions: []Partition{{
			Start: time.Hour, End: 2 * time.Hour,
			Isolated: []overlay.NodeID{1, 2},
		}},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		at       time.Duration
		from, to overlay.NodeID
		deliver  bool
	}
	probes := []probe{
		{30 * time.Minute, 1, 5, true},  // before the window
		{time.Hour, 1, 5, false},        // window start: cut
		{90 * time.Minute, 5, 2, false}, // cut, reverse direction
		{90 * time.Minute, 1, 2, true},  // both isolated: same side
		{90 * time.Minute, 5, 6, true},  // both outside
		{2 * time.Hour, 1, 5, true},     // window end is exclusive
		{3 * time.Hour, 2, 9, true},     // after the window
	}
	for _, p := range probes {
		if got := lm.Plan(p.at, p.from, p.to).Delivered(); got != p.deliver {
			t.Errorf("at %v %v→%v: delivered=%v, want %v", p.at, p.from, p.to, got, p.deliver)
		}
	}
	if s := lm.Stats(); s.PartitionDropped != 2 || s.Dropped != 0 {
		t.Fatalf("stats %+v, want 2 partition drops and no random drops", s)
	}
}

func TestOneWayPartitionIsAsymmetric(t *testing.T) {
	lm, err := NewLinkModel(Config{
		Partitions: []Partition{{
			Start: time.Hour, End: 2 * time.Hour,
			Isolated: []overlay.NodeID{1, 2},
			OneWay:   true,
		}},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		at       time.Duration
		from, to overlay.NodeID
		deliver  bool
	}
	probes := []probe{
		{30 * time.Minute, 5, 1, true},  // before the window
		{time.Hour, 5, 1, false},        // into the deaf set: dropped
		{90 * time.Minute, 6, 2, false}, // into the deaf set: dropped
		{90 * time.Minute, 1, 5, true},  // out of the deaf set: flows
		{90 * time.Minute, 2, 6, true},  // out of the deaf set: flows
		{90 * time.Minute, 1, 2, true},  // within the deaf set: flows
		{90 * time.Minute, 5, 6, true},  // both outside
		{2 * time.Hour, 5, 1, true},     // window end is exclusive
	}
	for _, p := range probes {
		if got := lm.Plan(p.at, p.from, p.to).Delivered(); got != p.deliver {
			t.Errorf("at %v %v→%v: delivered=%v, want %v", p.at, p.from, p.to, got, p.deliver)
		}
	}
	if s := lm.Stats(); s.PartitionDropped != 2 || s.Dropped != 0 {
		t.Fatalf("stats %+v, want 2 partition drops and no random drops", s)
	}
}

func TestSlowdownDelaysEitherEndpoint(t *testing.T) {
	const extra = 250 * time.Millisecond
	lm, err := NewLinkModel(Config{
		Slowdowns: []Slowdown{{
			Start: time.Hour, End: 2 * time.Hour,
			Nodes: []overlay.NodeID{3}, ExtraDelay: extra,
		}},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		at       time.Duration
		from, to overlay.NodeID
		extra    time.Duration
	}
	probes := []probe{
		{30 * time.Minute, 3, 5, 0},          // before the window
		{time.Hour, 3, 5, extra},             // slow node sending
		{90 * time.Minute, 5, 3, extra},      // slow node receiving
		{90 * time.Minute, 5, 6, 0},          // neither endpoint slow
		{2 * time.Hour, 3, 5, 0},             // window end is exclusive
		{2*time.Hour + time.Minute, 5, 3, 0}, // after the window
	}
	for _, p := range probes {
		out := lm.Plan(p.at, p.from, p.to)
		if len(out.ExtraDelays) != 1 || out.ExtraDelays[0] != p.extra {
			t.Errorf("at %v %v→%v: delays %v, want [%v]", p.at, p.from, p.to, out.ExtraDelays, p.extra)
		}
	}
	if s := lm.Stats(); s.Slowed != 2 {
		t.Fatalf("stats %+v, want 2 slowed transmissions", s)
	}
}

func TestStallHoldsInboundUntilWindowEnd(t *testing.T) {
	lm, err := NewLinkModel(Config{
		Stalls: []Stall{{
			Start: time.Hour, End: 2 * time.Hour,
			Nodes: []overlay.NodeID{4},
		}},
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		at       time.Duration
		from, to overlay.NodeID
		extra    time.Duration
	}
	probes := []probe{
		{30 * time.Minute, 5, 4, 0},                 // before the window
		{time.Hour, 5, 4, time.Hour},                // held until window end
		{90 * time.Minute, 5, 4, 30 * time.Minute},  // later send held less
		{100 * time.Minute, 4, 5, 0},                // stalled node's own sends flow
		{90 * time.Minute, 5, 6, 0},                 // unrelated link
		{2 * time.Hour, 5, 4, 0},                    // window end is exclusive
	}
	for _, p := range probes {
		out := lm.Plan(p.at, p.from, p.to)
		if len(out.ExtraDelays) != 1 || out.ExtraDelays[0] != p.extra {
			t.Errorf("at %v %v→%v: delays %v, want [%v]", p.at, p.from, p.to, out.ExtraDelays, p.extra)
		}
	}
	if s := lm.Stats(); s.Stalled != 2 {
		t.Fatalf("stats %+v, want 2 stalled transmissions", s)
	}
}

func TestKeyedPlanMatchesGrayWindows(t *testing.T) {
	cfg := Config{
		Partitions: []Partition{{
			Start: time.Hour, End: 2 * time.Hour,
			Isolated: []overlay.NodeID{1}, OneWay: true,
		}},
		Slowdowns: []Slowdown{{
			Start: time.Hour, End: 2 * time.Hour,
			Nodes: []overlay.NodeID{2}, ExtraDelay: 100 * time.Millisecond,
		}},
		Stalls: []Stall{{
			Start: time.Hour, End: 2 * time.Hour,
			Nodes: []overlay.NodeID{3},
		}},
	}
	lm, err := NewLinkModel(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	at := 90 * time.Minute
	if lm.PlanKeyed(at, 5, 1, 1).Delivered() {
		t.Error("keyed plan delivered into one-way-isolated node")
	}
	if !lm.PlanKeyed(at, 1, 5, 2).Delivered() {
		t.Error("keyed plan dropped transmission out of one-way-isolated node")
	}
	if out := lm.PlanKeyed(at, 5, 2, 3); len(out.ExtraDelays) != 1 || out.ExtraDelays[0] != 100*time.Millisecond {
		t.Errorf("keyed slowdown delays %v, want [100ms]", out.ExtraDelays)
	}
	if out := lm.PlanKeyed(at, 5, 3, 4); len(out.ExtraDelays) != 1 || out.ExtraDelays[0] != 30*time.Minute {
		t.Errorf("keyed stall delays %v, want [30m]", out.ExtraDelays)
	}
	if s := lm.Stats(); s.Slowed != 1 || s.Stalled != 1 || s.PartitionDropped != 1 {
		t.Fatalf("keyed stats %+v", s)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	plan := func() []int {
		lm, err := NewLinkModel(
			Config{DropProb: 0.3, DupProb: 0.2, MaxExtraDelay: 500 * time.Millisecond},
			rand.New(rand.NewSource(42)),
		)
		if err != nil {
			t.Fatal(err)
		}
		var trace []int
		for i := 0; i < 1000; i++ {
			out := lm.Plan(time.Duration(i)*time.Second, overlay.NodeID(i%7), overlay.NodeID(i%5))
			trace = append(trace, len(out.ExtraDelays))
			for _, d := range out.ExtraDelays {
				trace = append(trace, int(d))
			}
		}
		return trace
	}
	a, b := plan(), plan()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	lm, err := NewLinkModel(Config{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		out := lm.Plan(0, 1, 2)
		if len(out.ExtraDelays) != 1 || out.ExtraDelays[0] != 0 {
			t.Fatalf("zero config altered delivery: %+v", out)
		}
	}
	if s := lm.Stats(); s.Lost() != 0 || s.Duplicated != 0 || s.Sent != 100 {
		t.Fatalf("zero config stats %+v", s)
	}
}
