// Package stats provides the small statistical helpers the evaluation
// harness needs: moments, extrema, and multi-run aggregation.
package stats

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary condenses a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// MeanDuration returns the mean of ds (0 for an empty slice).
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// DurationsToSeconds converts durations to float64 seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// SecondsToDuration converts float64 seconds to a duration.
func SecondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// MeanSeries averages several equally-binned series pointwise; shorter
// series are treated as holding their last value. It returns nil when
// series is empty.
func MeanSeries(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]float64, maxLen)
	for i := 0; i < maxLen; i++ {
		var sum float64
		for _, s := range series {
			switch {
			case len(s) == 0:
				// contributes 0
			case i < len(s):
				sum += s[i]
			default:
				sum += s[len(s)-1]
			}
		}
		out[i] = sum / float64(len(series))
	}
	return out
}
