package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !almostEqual(got, tt.want) {
				t.Fatalf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev of <2 samples should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {110, 5}, {62.5, 3.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almostEqual(s.Mean, 2) || !almostEqual(s.Min, 1) || !almostEqual(s.Max, 3) {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestMeanDuration(t *testing.T) {
	ds := []time.Duration{time.Hour, 3 * time.Hour}
	if got := MeanDuration(ds); got != 2*time.Hour {
		t.Fatalf("MeanDuration = %v", got)
	}
	if MeanDuration(nil) != 0 {
		t.Fatal("empty MeanDuration should be 0")
	}
}

func TestDurationConversions(t *testing.T) {
	ds := []time.Duration{time.Second, 2 * time.Second}
	fs := DurationsToSeconds(ds)
	if fs[0] != 1 || fs[1] != 2 {
		t.Fatalf("DurationsToSeconds = %v", fs)
	}
	if SecondsToDuration(1.5) != 1500*time.Millisecond {
		t.Fatal("SecondsToDuration wrong")
	}
}

func TestMeanSeries(t *testing.T) {
	got := MeanSeries([][]float64{
		{2, 4, 6},
		{4, 6},
	})
	want := []float64{3, 5, 6}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Fatalf("MeanSeries = %v, want %v", got, want)
		}
	}
	if MeanSeries(nil) != nil {
		t.Fatal("MeanSeries(nil) should be nil")
	}
	if MeanSeries([][]float64{{}, {}}) != nil {
		t.Fatal("MeanSeries of empty series should be nil")
	}
}

// Property: Mean lies within [Min, Max], StdDev is non-negative, and
// Percentile is monotone in p.
func TestPropertyStatsBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		if StdDev(xs) < 0 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
