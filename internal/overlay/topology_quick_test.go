package overlay

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// quickTopologies are the generator families under property test.
var quickTopologies = []Topology{
	TopologyBlatant, TopologyRandom, TopologyRing,
	TopologySmallWorld, TopologyScaleFree,
}

// quickBuild maps arbitrary fuzz bytes onto a valid generator input and
// builds the overlay: 2–81 nodes, mean degree 2–8, any seed, any family.
func quickBuild(t *testing.T, topoRaw, nRaw, degRaw uint8, seed int64) (*Graph, Topology, int) {
	t.Helper()
	topo := quickTopologies[int(topoRaw)%len(quickTopologies)]
	n := 2 + int(nRaw)%80
	meanDegree := 2 + float64(degRaw%7)
	g, err := BuildTopology(topo, n, meanDegree, DefaultBlatantConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("%v n=%d deg=%v: %v", topo, n, meanDegree, err)
	}
	return g, topo, n
}

// TestQuickTopologyConnected property-checks that every generator yields a
// connected overlay for every admissible size, density, and seed: a
// disconnected overlay would silently partition the ARiA flood plane.
func TestQuickTopologyConnected(t *testing.T) {
	f := func(topoRaw, nRaw, degRaw uint8, seed int64) bool {
		g, _, n := quickBuild(t, topoRaw, nRaw, degRaw, seed)
		return g.NumNodes() == n && g.Connected()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTopologyDegreeBounds property-checks the structural envelope of
// every generated graph: simple (no self-links, symmetric adjacency),
// handshake identity (degree sum = 2·links), every degree within [1, n-1],
// and the ring's exact degree-2 regularity.
func TestQuickTopologyDegreeBounds(t *testing.T) {
	f := func(topoRaw, nRaw, degRaw uint8, seed int64) bool {
		g, topo, n := quickBuild(t, topoRaw, nRaw, degRaw, seed)
		degreeSum := 0
		for _, id := range g.Nodes() {
			d := g.Degree(id)
			degreeSum += d
			if d < 1 || d > n-1 {
				t.Logf("%v n=%d: node %d degree %d outside [1, %d]", topo, n, id, d, n-1)
				return false
			}
			if g.HasLink(id, id) {
				t.Logf("%v n=%d: node %d has a self-link", topo, n, id)
				return false
			}
			for _, nb := range g.Neighbors(id) {
				if !g.HasLink(nb, id) {
					t.Logf("%v n=%d: asymmetric link %d->%d", topo, n, id, nb)
					return false
				}
			}
			if topo == TopologyRing && n > 2 && d != 2 {
				t.Logf("ring n=%d: node %d degree %d, want 2", n, id, d)
				return false
			}
		}
		if degreeSum != 2*g.NumLinks() {
			t.Logf("%v n=%d: degree sum %d != 2*links %d", topo, n, degreeSum, g.NumLinks())
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTopologyDeterministic property-checks that equal seeds produce
// identical graphs — the foundation of reproducible scenario runs.
func TestQuickTopologyDeterministic(t *testing.T) {
	f := func(topoRaw, nRaw, degRaw uint8, seed int64) bool {
		a, topo, n := quickBuild(t, topoRaw, nRaw, degRaw, seed)
		b, _, _ := quickBuild(t, topoRaw, nRaw, degRaw, seed)
		if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
			t.Logf("%v n=%d seed %d: rebuild differs:\n%s\nvs\n%s", topo, n, seed, fa, fb)
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fingerprint canonicalizes a graph as its sorted edge list.
func fingerprint(g *Graph) string {
	var edges []string
	for _, id := range g.Nodes() {
		for _, nb := range g.Neighbors(id) {
			if id < nb {
				edges = append(edges, fmt.Sprintf("%d-%d", id, nb))
			}
		}
	}
	sort.Strings(edges)
	return fmt.Sprintf("%d nodes %v", g.NumNodes(), edges)
}
