package overlay

import (
	"fmt"
	"math/rand"
)

// Topology selects an overlay construction algorithm. The paper's
// evaluation uses the swarm-managed BLATANT-S overlay; its future-work
// section calls for experiments with other peer-to-peer overlay types,
// which these generators provide.
type Topology int

// Overlay topology families.
const (
	// TopologyBlatant is the swarm-managed overlay (the paper's).
	TopologyBlatant Topology = iota + 1

	// TopologyRandom is an Erdős–Rényi-style random graph with a target
	// mean degree, patched to connectivity.
	TopologyRandom

	// TopologyRing is a bidirectional ring: maximal path lengths, the
	// worst case for flooding reach.
	TopologyRing

	// TopologySmallWorld is a Watts–Strogatz graph: a ring lattice with
	// rewired shortcut links.
	TopologySmallWorld

	// TopologyScaleFree is a Barabási–Albert preferential-attachment
	// graph: hub-dominated, like many deployed unstructured overlays.
	TopologyScaleFree
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopologyBlatant:
		return "blatant"
	case TopologyRandom:
		return "random"
	case TopologyRing:
		return "ring"
	case TopologySmallWorld:
		return "smallworld"
	case TopologyScaleFree:
		return "scalefree"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// ParseTopology resolves a topology name.
func ParseTopology(s string) (Topology, error) {
	for _, t := range []Topology{TopologyBlatant, TopologyRandom, TopologyRing, TopologySmallWorld, TopologyScaleFree} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown topology %q", s)
}

// BuildTopology constructs an n-node overlay of the given family. The
// meanDegree parameter tunes link density where the family supports it
// (values < 2 are raised to 2); the BLATANT family ignores it and uses cfg.
func BuildTopology(t Topology, n int, meanDegree float64, cfg BlatantConfig, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("overlay size %d must be positive", n)
	}
	if meanDegree < 2 {
		meanDegree = 2
	}
	switch t {
	case TopologyBlatant:
		b, err := Build(n, cfg, rng)
		if err != nil {
			return nil, err
		}
		return b.Graph(), nil
	case TopologyRandom:
		return buildRandom(n, meanDegree, rng), nil
	case TopologyRing:
		return buildRing(n), nil
	case TopologySmallWorld:
		return buildSmallWorld(n, meanDegree, 0.1, rng), nil
	case TopologyScaleFree:
		return buildScaleFree(n, meanDegree, rng), nil
	default:
		return nil, fmt.Errorf("invalid topology %d", int(t))
	}
}

func newNodes(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	return g
}

// buildRing connects node i to i±1 (mod n).
func buildRing(n int) *Graph {
	g := newNodes(n)
	if n < 2 {
		return g
	}
	for i := 0; i < n; i++ {
		g.AddLink(NodeID(i), NodeID((i+1)%n))
	}
	return g
}

// buildRandom draws n·meanDegree/2 random links, then patches any
// disconnected components onto the giant one.
func buildRandom(n int, meanDegree float64, rng *rand.Rand) *Graph {
	g := newNodes(n)
	if n < 2 {
		return g
	}
	target := int(float64(n) * meanDegree / 2)
	// A simple graph caps at n(n-1)/2 links; asking for more (tiny n with
	// a high mean degree) would spin forever on duplicate draws.
	if max := n * (n - 1) / 2; target > max {
		target = max
	}
	for g.NumLinks() < target {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		g.AddLink(a, b)
	}
	connect(g, rng)
	return g
}

// buildSmallWorld is Watts–Strogatz: a ring lattice with k neighbors per
// side, each link rewired with probability beta.
func buildSmallWorld(n int, meanDegree, beta float64, rng *rand.Rand) *Graph {
	g := newNodes(n)
	if n < 2 {
		return g
	}
	k := int(meanDegree / 2)
	if k < 1 {
		k = 1
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			g.AddLink(NodeID(i), NodeID((i+d)%n))
		}
	}
	// Rewire: replace (i, i+d) with (i, random) with probability beta.
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			if rng.Float64() >= beta {
				continue
			}
			old := NodeID((i + d) % n)
			candidate := NodeID(rng.Intn(n))
			if candidate == NodeID(i) || g.HasLink(NodeID(i), candidate) {
				continue
			}
			if g.RemoveLink(NodeID(i), old) {
				g.AddLink(NodeID(i), candidate)
			}
		}
	}
	connect(g, rng)
	return g
}

// buildScaleFree is Barabási–Albert preferential attachment with m links
// per new node.
func buildScaleFree(n int, meanDegree float64, rng *rand.Rand) *Graph {
	g := newNodes(n)
	if n < 2 {
		return g
	}
	m := int(meanDegree / 2)
	if m < 1 {
		m = 1
	}
	// Seed clique of m+1 nodes.
	seedSize := m + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for k := i + 1; k < seedSize; k++ {
			g.AddLink(NodeID(i), NodeID(k))
		}
	}
	// Attachment lottery: each link endpoint adds one ticket.
	var tickets []NodeID
	for i := 0; i < seedSize; i++ {
		for k := 0; k < g.Degree(NodeID(i)); k++ {
			tickets = append(tickets, NodeID(i))
		}
	}
	for i := seedSize; i < n; i++ {
		added := 0
		for attempts := 0; added < m && attempts < 10*m+20; attempts++ {
			target := tickets[rng.Intn(len(tickets))]
			if g.AddLink(NodeID(i), target) {
				tickets = append(tickets, NodeID(i), target)
				added++
			}
		}
	}
	connect(g, rng)
	return g
}

// connect links stray components to the component of the lowest node ID.
func connect(g *Graph, rng *rand.Rand) {
	nodes := g.Nodes()
	if len(nodes) < 2 {
		return
	}
	for {
		reach := g.Distances(nodes[0])
		if len(reach) == len(nodes) {
			return
		}
		// Pick one reachable and one unreachable node and bridge them.
		var inside, outside []NodeID
		for _, id := range nodes {
			if _, ok := reach[id]; ok {
				inside = append(inside, id)
			} else {
				outside = append(outside, id)
			}
		}
		g.AddLink(inside[rng.Intn(len(inside))], outside[rng.Intn(len(outside))])
	}
}
