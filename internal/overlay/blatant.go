package overlay

import (
	"fmt"
	"math/rand"
)

// BlatantConfig parameterizes the swarm topology manager.
type BlatantConfig struct {
	// TargetPathLength is the average path length bound the manager
	// works toward (9 hops in the paper's evaluation).
	TargetPathLength float64

	// JoinDegree is how many random existing nodes a newly joining node
	// links to.
	JoinDegree int

	// MinDegree is the degree below which a node's links are never
	// pruned.
	MinDegree int

	// MaxDegree is the degree above which prune ants consider removing
	// redundant links.
	MaxDegree int

	// AntsPerRound is how many discovery ants each optimization round
	// launches.
	AntsPerRound int

	// PathSamples bounds the BFS sources used to estimate the average
	// path length each round (0 = exact).
	PathSamples int
}

// DefaultBlatantConfig matches the paper's evaluation overlay envelope:
// bounded average path length of 9 with a mean degree around 4.
func DefaultBlatantConfig() BlatantConfig {
	return BlatantConfig{
		TargetPathLength: 9,
		JoinDegree:       2,
		MinDegree:        2,
		MaxDegree:        8,
		AntsPerRound:     64,
		PathSamples:      48,
	}
}

// Validate reports the first structural problem with the configuration.
func (c BlatantConfig) Validate() error {
	switch {
	case c.TargetPathLength <= 1:
		return fmt.Errorf("target path length %v must exceed 1", c.TargetPathLength)
	case c.JoinDegree < 1:
		return fmt.Errorf("join degree %d must be positive", c.JoinDegree)
	case c.MinDegree < 1:
		return fmt.Errorf("min degree %d must be positive", c.MinDegree)
	case c.MaxDegree < c.MinDegree:
		return fmt.Errorf("max degree %d below min degree %d", c.MaxDegree, c.MinDegree)
	case c.AntsPerRound < 1:
		return fmt.Errorf("ants per round %d must be positive", c.AntsPerRound)
	}
	return nil
}

// Blatant maintains an overlay graph with bounded average path length and a
// minimal link count, in the spirit of the BLATANT-S algorithm the paper's
// evaluation uses.
//
// The original algorithm circulates several species of ant-like agents
// between nodes; this implementation keeps the same observable behaviour
// with two ant species evaluated centrally per round:
//
//   - discovery/link ants sample node pairs and add a shortcut link when the
//     pair's hop distance exceeds the target bound;
//   - prune ants remove a link between two high-degree nodes when an
//     alternative short path makes it redundant.
//
// The centralized evaluation is a simulation-efficiency substitution: ARiA
// only observes the overlay through neighbor lists, so only the resulting
// topology envelope (path length bound, degree) matters.
type Blatant struct {
	cfg   BlatantConfig
	graph *Graph
	rng   *rand.Rand
	next  NodeID
}

// NewBlatant wraps an empty graph in a manager. The random source is
// retained for all topology decisions.
func NewBlatant(cfg BlatantConfig, rng *rand.Rand) (*Blatant, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("blatant config: %w", err)
	}
	return &Blatant{cfg: cfg, graph: NewGraph(), rng: rng}, nil
}

// Graph exposes the managed overlay graph.
func (b *Blatant) Graph() *Graph {
	return b.graph
}

// Join adds a new node to the overlay, wiring it to JoinDegree random
// existing nodes (or all of them, when fewer exist), and returns its ID.
func (b *Blatant) Join() NodeID {
	id := b.next
	b.next++
	b.graph.AddNode(id)
	existing := b.graph.Nodes()
	// Collect candidates other than the new node itself.
	candidates := existing[:0:0]
	for _, n := range existing {
		if n != id {
			candidates = append(candidates, n)
		}
	}
	b.rng.Shuffle(len(candidates), func(i, k int) {
		candidates[i], candidates[k] = candidates[k], candidates[i]
	})
	links := b.cfg.JoinDegree
	if links > len(candidates) {
		links = len(candidates)
	}
	for i := 0; i < links; i++ {
		b.graph.AddLink(id, candidates[i])
	}
	return id
}

// joinFrom is Join with the candidate pool supplied by the caller: it
// samples JoinDegree attachment points with a partial Fisher–Yates over
// candidates (which it reorders in place) instead of enumerating and fully
// shuffling the graph's node set. O(JoinDegree) per join, which is what
// makes 100k-node builds tractable; the attachment distribution is the
// same as Join's, but the RNG draw sequence differs, so Build only routes
// through here above largeBuildThreshold to keep small-overlay streams —
// and every existing seeded scenario — unchanged.
func (b *Blatant) joinFrom(candidates []NodeID) NodeID {
	id := b.next
	b.next++
	b.graph.AddNode(id)
	links := b.cfg.JoinDegree
	if links > len(candidates) {
		links = len(candidates)
	}
	for i := 0; i < links; i++ {
		k := i + b.rng.Intn(len(candidates)-i)
		candidates[i], candidates[k] = candidates[k], candidates[i]
		b.graph.AddLink(id, candidates[i])
	}
	return id
}

// Round launches one batch of ants: discovery ants that may add shortcut
// links, then prune ants that may remove redundant ones. It returns the
// number of links added and removed.
func (b *Blatant) Round() (added, removed int) {
	nodes := b.graph.Nodes()
	if len(nodes) < 2 {
		return 0, 0
	}
	for i := 0; i < b.cfg.AntsPerRound; i++ {
		u := nodes[b.rng.Intn(len(nodes))]
		v := nodes[b.rng.Intn(len(nodes))]
		if u == v {
			continue
		}
		d := b.graph.Distance(u, v)
		switch {
		case d < 0 || float64(d) > b.cfg.TargetPathLength:
			// Distant or disconnected pair: add a shortcut.
			if b.graph.AddLink(u, v) {
				added++
			}
		case d == 1:
			// Prune ant: drop the link if both endpoints are
			// over-connected and the link is redundant.
			if b.pruneIfRedundant(u, v) {
				removed++
			}
		}
	}
	return added, removed
}

// pruneIfRedundant removes link (u,v) when both endpoints exceed MaxDegree
// and remain close without it.
func (b *Blatant) pruneIfRedundant(u, v NodeID) bool {
	if b.graph.Degree(u) <= b.cfg.MaxDegree || b.graph.Degree(v) <= b.cfg.MaxDegree {
		return false
	}
	b.graph.RemoveLink(u, v)
	d := b.graph.Distance(u, v)
	if d < 0 || float64(d) > b.cfg.TargetPathLength {
		// Not redundant after all: restore.
		b.graph.AddLink(u, v)
		return false
	}
	return true
}

// Stabilize runs optimization rounds until the sampled average path length
// is within the target bound and the graph is connected, or maxRounds is
// exhausted. It returns the number of rounds executed and the final stats.
func (b *Blatant) Stabilize(maxRounds int) (int, PathStats) {
	var stats PathStats
	for round := 1; round <= maxRounds; round++ {
		b.Round()
		stats = b.graph.SamplePathStats(b.rng, b.cfg.PathSamples)
		if stats.Unreachable == 0 && stats.AveragePathLength <= b.cfg.TargetPathLength {
			return round, stats
		}
	}
	return maxRounds, stats
}

// largeBuildThreshold is the overlay size above which Build switches from
// per-join node-set shuffles (O(n² log n) total, fine at catalog scale) to
// the incremental candidate pool (O(n·JoinDegree)). Every checked-in
// scenario and seeded test sits below it, so their topology RNG streams
// are byte-for-byte unchanged.
const largeBuildThreshold = 4096

// Build constructs an n-node overlay: nodes join one at a time, then the
// manager stabilizes the topology. It is the standard way scenarios obtain
// their overlay.
func Build(n int, cfg BlatantConfig, rng *rand.Rand) (*Blatant, error) {
	if n < 1 {
		return nil, fmt.Errorf("overlay size %d must be positive", n)
	}
	b, err := NewBlatant(cfg, rng)
	if err != nil {
		return nil, err
	}
	if n > largeBuildThreshold {
		ids := make([]NodeID, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, b.joinFrom(ids))
		}
	} else {
		for i := 0; i < n; i++ {
			b.Join()
		}
	}
	const maxRounds = 200
	if rounds, stats := b.Stabilize(maxRounds); rounds == maxRounds && stats.Unreachable > 0 {
		return nil, fmt.Errorf("overlay failed to stabilize after %d rounds (stats %+v)", maxRounds, stats)
	}
	return b, nil
}
