package overlay

import (
	"fmt"
	"hash/fnv"
	"time"
)

// LatencyModel assigns one-way message delays between overlay nodes.
type LatencyModel interface {
	// Delay returns the one-way latency from one node to another. It must
	// be deterministic for a given pair and strictly positive.
	Delay(from, to NodeID) time.Duration
}

// MinDelayer is an optional LatencyModel extension reporting a lower bound
// on Delay over all pairs. The sharded simulation kernel sizes its epoch
// windows to it: any epoch at or below the bound keeps cross-lane delivery
// times exact (no barrier clamping). All models in this package implement
// it.
type MinDelayer interface {
	// MinDelay returns the minimum one-way latency over all node pairs.
	MinDelay() time.Duration
}

// PairwiseLatency is a deterministic latency model: every unordered node
// pair gets a fixed one-way delay drawn uniformly from [Min, Max] by
// hashing the pair with a salt (FNV-1a, so runs reproduce across processes).
// This models the paper's "realistic round-trip delays" without storing an
// n² matrix.
type PairwiseLatency struct {
	Min, Max time.Duration
	salt     uint64
}

var _ LatencyModel = (*PairwiseLatency)(nil)

// NewPairwiseLatency builds a model with delays in [min, max], deterministic
// for a given salt.
func NewPairwiseLatency(min, max time.Duration, salt uint64) (*PairwiseLatency, error) {
	if min <= 0 || max < min {
		return nil, fmt.Errorf("invalid latency range [%v, %v]", min, max)
	}
	return &PairwiseLatency{Min: min, Max: max, salt: salt}, nil
}

// DefaultLatency mirrors wide-area grid deployments: 5–100 ms one way
// (10–200 ms round trip).
func DefaultLatency(salt uint64) *PairwiseLatency {
	m, err := NewPairwiseLatency(5*time.Millisecond, 100*time.Millisecond, salt)
	if err != nil {
		// Unreachable: constants are valid.
		panic(err)
	}
	return m
}

// Delay implements LatencyModel. The delay is symmetric in the pair.
func (l *PairwiseLatency) Delay(from, to NodeID) time.Duration {
	a, b := from, to
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	var buf [24]byte
	put64(buf[0:8], uint64(uint32(a)))
	put64(buf[8:16], uint64(uint32(b)))
	put64(buf[16:24], l.salt)
	_, _ = h.Write(buf[:]) // fnv.Write never fails
	span := uint64(l.Max - l.Min)
	if span == 0 {
		return l.Min
	}
	return l.Min + time.Duration(h.Sum64()%(span+1))
}

// MinDelay implements MinDelayer.
func (l *PairwiseLatency) MinDelay() time.Duration { return l.Min }

// FixedLatency returns the same delay for every pair; useful in tests.
type FixedLatency time.Duration

var (
	_ LatencyModel = FixedLatency(0)
	_ MinDelayer   = FixedLatency(0)
)

// Delay implements LatencyModel.
func (f FixedLatency) Delay(_, _ NodeID) time.Duration {
	return time.Duration(f)
}

// MinDelay implements MinDelayer.
func (f FixedLatency) MinDelay() time.Duration { return time.Duration(f) }

// SiteLatency models a grid of clusters: nodes are partitioned into sites
// by ID, pairs within a site see LAN-class delays and pairs across sites
// WAN-class delays (each drawn deterministically per pair, like
// PairwiseLatency). This reflects real grid deployments, where a virtual
// organization federates whole clusters.
type SiteLatency struct {
	sites int
	lan   *PairwiseLatency
	wan   *PairwiseLatency
}

var _ LatencyModel = (*SiteLatency)(nil)

// NewSiteLatency builds a model with the given number of sites; LAN delays
// span [0.2ms, 2ms] and WAN delays [10ms, 200ms].
func NewSiteLatency(sites int, salt uint64) (*SiteLatency, error) {
	if sites < 1 {
		return nil, fmt.Errorf("site count %d must be positive", sites)
	}
	lan, err := NewPairwiseLatency(200*time.Microsecond, 2*time.Millisecond, salt)
	if err != nil {
		return nil, err
	}
	wan, err := NewPairwiseLatency(10*time.Millisecond, 200*time.Millisecond, salt+1)
	if err != nil {
		return nil, err
	}
	return &SiteLatency{sites: sites, lan: lan, wan: wan}, nil
}

// Site reports which site a node belongs to.
func (s *SiteLatency) Site(id NodeID) int {
	site := int(id) % s.sites
	if site < 0 {
		site += s.sites
	}
	return site
}

// Delay implements LatencyModel.
func (s *SiteLatency) Delay(from, to NodeID) time.Duration {
	if s.Site(from) == s.Site(to) {
		return s.lan.Delay(from, to)
	}
	return s.wan.Delay(from, to)
}

// MinDelay implements MinDelayer: the LAN floor bounds every pair.
func (s *SiteLatency) MinDelay() time.Duration { return s.lan.Min }

var _ MinDelayer = (*SiteLatency)(nil)

func put64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}
