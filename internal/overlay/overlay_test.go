package overlay

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddNode(1)
	g.AddNode(2)
	g.AddNode(3)
	if !g.AddLink(1, 2) {
		t.Fatal("AddLink(1,2) failed")
	}
	if g.AddLink(1, 2) {
		t.Fatal("duplicate AddLink succeeded")
	}
	if g.AddLink(2, 1) {
		t.Fatal("reversed duplicate AddLink succeeded")
	}
	if g.AddLink(1, 1) {
		t.Fatal("self link succeeded")
	}
	if g.AddLink(1, 99) {
		t.Fatal("link to absent node succeeded")
	}
	if !g.HasLink(2, 1) {
		t.Fatal("link not symmetric")
	}
	if g.NumLinks() != 1 || g.NumNodes() != 3 {
		t.Fatalf("links=%d nodes=%d, want 1/3", g.NumLinks(), g.NumNodes())
	}
	if g.Degree(1) != 1 || g.Degree(3) != 0 {
		t.Fatal("degree wrong")
	}
	if !g.RemoveLink(1, 2) || g.RemoveLink(1, 2) {
		t.Fatal("RemoveLink semantics wrong")
	}
	if g.NumLinks() != 0 {
		t.Fatal("link count wrong after removal")
	}
}

func TestGraphRemoveNode(t *testing.T) {
	g := NewGraph()
	for i := NodeID(1); i <= 4; i++ {
		g.AddNode(i)
	}
	g.AddLink(1, 2)
	g.AddLink(1, 3)
	g.AddLink(2, 3)
	if !g.RemoveNode(1) {
		t.Fatal("RemoveNode failed")
	}
	if g.RemoveNode(1) {
		t.Fatal("double RemoveNode succeeded")
	}
	if g.NumLinks() != 1 {
		t.Fatalf("links = %d after removal, want 1", g.NumLinks())
	}
	if g.HasLink(1, 2) || g.Degree(2) != 1 {
		t.Fatal("stale adjacency after RemoveNode")
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	g := NewGraph()
	for i := NodeID(1); i <= 5; i++ {
		g.AddNode(i)
	}
	g.AddLink(3, 5)
	g.AddLink(3, 1)
	g.AddLink(3, 4)
	nbs := g.Neighbors(3)
	want := []NodeID{1, 4, 5}
	for i, w := range want {
		if nbs[i] != w {
			t.Fatalf("Neighbors(3) = %v, want %v", nbs, want)
		}
	}
	nbs[0] = 99
	if g.Neighbors(3)[0] != 1 {
		t.Fatal("Neighbors returned internal slice")
	}
}

func TestDistances(t *testing.T) {
	g := NewGraph()
	for i := NodeID(0); i < 5; i++ {
		g.AddNode(i)
	}
	// Path 0-1-2-3, node 4 isolated.
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 3)
	if d := g.Distance(0, 3); d != 3 {
		t.Fatalf("Distance(0,3) = %d, want 3", d)
	}
	if d := g.Distance(0, 0); d != 0 {
		t.Fatalf("Distance(0,0) = %d, want 0", d)
	}
	if d := g.Distance(0, 4); d != -1 {
		t.Fatalf("Distance(0,4) = %d, want -1", d)
	}
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	g.AddLink(3, 4)
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
}

func TestSamplePathStatsOnRing(t *testing.T) {
	g := NewGraph()
	const n = 20
	for i := NodeID(0); i < n; i++ {
		g.AddNode(i)
	}
	for i := NodeID(0); i < n; i++ {
		g.AddLink(i, (i+1)%n)
	}
	stats := g.SamplePathStats(rand.New(rand.NewSource(1)), 0)
	// Ring of 20: diameter 10, APL = sum(1..10 with 10 once)/19 = 100/19.
	if stats.Diameter != 10 {
		t.Fatalf("diameter = %d, want 10", stats.Diameter)
	}
	wantAPL := 100.0 / 19.0
	if stats.AveragePathLength < wantAPL-0.01 || stats.AveragePathLength > wantAPL+0.01 {
		t.Fatalf("APL = %v, want %v", stats.AveragePathLength, wantAPL)
	}
	if stats.Unreachable != 0 {
		t.Fatalf("unreachable = %d, want 0", stats.Unreachable)
	}
}

func TestRandomNeighbors(t *testing.T) {
	g := NewGraph()
	for i := NodeID(0); i < 10; i++ {
		g.AddNode(i)
	}
	for i := NodeID(1); i < 10; i++ {
		g.AddLink(0, i)
	}
	rng := rand.New(rand.NewSource(2))
	got := g.RandomNeighbors(rng, 0, 4, map[NodeID]bool{1: true, 2: true})
	if len(got) != 4 {
		t.Fatalf("got %d neighbors, want 4", len(got))
	}
	seen := make(map[NodeID]bool)
	for _, id := range got {
		if id == 1 || id == 2 {
			t.Fatalf("skip set ignored: got %v", got)
		}
		if seen[id] {
			t.Fatalf("duplicate neighbor %v", id)
		}
		seen[id] = true
	}
	g.AddNode(77) // isolated
	if g.RandomNeighbors(rng, 77, 4, nil) != nil {
		t.Fatal("isolated node returned neighbors")
	}
	if g.RandomNeighbors(rng, 0, 0, nil) != nil {
		t.Fatal("k=0 returned neighbors")
	}
}

func TestBlatantConfigValidate(t *testing.T) {
	if err := DefaultBlatantConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*BlatantConfig)
	}{
		{"tiny target", func(c *BlatantConfig) { c.TargetPathLength = 1 }},
		{"zero join", func(c *BlatantConfig) { c.JoinDegree = 0 }},
		{"zero min degree", func(c *BlatantConfig) { c.MinDegree = 0 }},
		{"max below min", func(c *BlatantConfig) { c.MaxDegree = 1; c.MinDegree = 3 }},
		{"zero ants", func(c *BlatantConfig) { c.AntsPerRound = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultBlatantConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted bad config")
			}
		})
	}
}

func TestBuildMeetsPaperEnvelope(t *testing.T) {
	b, err := Build(500, DefaultBlatantConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d, want 500", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("built overlay not connected")
	}
	stats := g.SamplePathStats(rand.New(rand.NewSource(8)), 0)
	if stats.AveragePathLength > 9 {
		t.Fatalf("APL = %v, want <= 9", stats.AveragePathLength)
	}
	deg := g.MeanDegree()
	if deg < 2 || deg > 10 {
		t.Fatalf("mean degree = %v, want within [2, 10] (paper attains ~4)", deg)
	}
}

func TestBuildSingleNode(t *testing.T) {
	b, err := Build(1, DefaultBlatantConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph().NumNodes() != 1 {
		t.Fatal("single node build wrong")
	}
	if _, err := Build(0, DefaultBlatantConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Build(0) should fail")
	}
}

func TestJoinKeepsConnectivity(t *testing.T) {
	b, err := Build(50, DefaultBlatantConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		id := b.Join()
		if b.Graph().Degree(id) == 0 {
			t.Fatalf("joined node %v has no links", id)
		}
	}
	if !b.Graph().Connected() {
		t.Fatal("overlay disconnected after joins")
	}
	if b.Graph().NumNodes() != 75 {
		t.Fatalf("nodes = %d, want 75", b.Graph().NumNodes())
	}
}

func TestStabilizeImprovesRing(t *testing.T) {
	cfg := DefaultBlatantConfig()
	cfg.TargetPathLength = 5
	b, err := NewBlatant(cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	const n = 100
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i < n; i++ {
		g.AddLink(NodeID(i), NodeID((i+1)%n))
	}
	before := g.SamplePathStats(rand.New(rand.NewSource(12)), 0).AveragePathLength
	_, stats := b.Stabilize(100)
	if stats.AveragePathLength > 5 {
		t.Fatalf("APL after stabilize = %v, want <= 5 (before %v)", stats.AveragePathLength, before)
	}
}

func TestBlatantDeterminism(t *testing.T) {
	build := func() ([]NodeID, int) {
		b, err := Build(80, DefaultBlatantConfig(), rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		return b.Graph().Neighbors(40), b.Graph().NumLinks()
	}
	n1, l1 := build()
	n2, l2 := build()
	if l1 != l2 || len(n1) != len(n2) {
		t.Fatalf("builds diverged: %d/%v vs %d/%v", l1, n1, l2, n2)
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("neighbor sets diverged: %v vs %v", n1, n2)
		}
	}
}

func TestPairwiseLatencyProperties(t *testing.T) {
	m, err := NewPairwiseLatency(5*time.Millisecond, 100*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	for a := NodeID(0); a < 30; a++ {
		for b := NodeID(0); b < 30; b++ {
			d := m.Delay(a, b)
			if d < 5*time.Millisecond || d > 100*time.Millisecond {
				t.Fatalf("Delay(%v,%v) = %v outside range", a, b, d)
			}
			if d != m.Delay(b, a) {
				t.Fatalf("latency not symmetric for (%v,%v)", a, b)
			}
			if d != m.Delay(a, b) {
				t.Fatal("latency not deterministic")
			}
		}
	}
}

func TestPairwiseLatencySaltChangesDelays(t *testing.T) {
	m1 := DefaultLatency(1)
	m2 := DefaultLatency(2)
	same := 0
	for a := NodeID(0); a < 50; a++ {
		if m1.Delay(a, a+1) == m2.Delay(a, a+1) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different salts produced identical latency maps")
	}
}

func TestNewPairwiseLatencyRejects(t *testing.T) {
	if _, err := NewPairwiseLatency(0, time.Second, 1); err == nil {
		t.Fatal("accepted zero min")
	}
	if _, err := NewPairwiseLatency(time.Second, time.Millisecond, 1); err == nil {
		t.Fatal("accepted max < min")
	}
}

func TestFixedLatency(t *testing.T) {
	if FixedLatency(time.Second).Delay(1, 2) != time.Second {
		t.Fatal("fixed latency wrong")
	}
}

// Property: AddLink/RemoveLink keep the link count and symmetry invariants
// under any random operation sequence.
func TestPropertyGraphInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		g := NewGraph()
		const n = 12
		for i := NodeID(0); i < n; i++ {
			g.AddNode(i)
		}
		for _, op := range ops {
			a := NodeID(op % n)
			b := NodeID((op / n) % n)
			if op%3 == 0 {
				g.RemoveLink(a, b)
			} else {
				g.AddLink(a, b)
			}
		}
		// Recount links from adjacency and check symmetry.
		total := 0
		for _, u := range g.Nodes() {
			for _, v := range g.Neighbors(u) {
				if !g.HasLink(v, u) {
					return false
				}
				total++
			}
		}
		return total == 2*g.NumLinks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	g.AddNode(1)
	g.AddNode(2)
	g.AddNode(3)
	g.AddLink(1, 2)
	g.AddLink(2, 3)
	var buf strings.Builder
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "overlay" {`, "1 -- 2;", "2 -- 3;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "2 -- 1") {
		t.Fatal("DOT emitted a link twice")
	}
	// Determinism.
	var buf2 strings.Builder
	if err := g.WriteDOT(&buf2, ""); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Fatal("DOT output not deterministic")
	}
}

func TestSiteLatency(t *testing.T) {
	m, err := NewSiteLatency(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSiteLatency(0, 1); err == nil {
		t.Fatal("accepted zero sites")
	}
	// Nodes 0 and 4 share site 0; node 1 is in site 1.
	if m.Site(0) != 0 || m.Site(4) != 0 || m.Site(1) != 1 {
		t.Fatalf("site mapping wrong: %d %d %d", m.Site(0), m.Site(4), m.Site(1))
	}
	lan := m.Delay(0, 4)
	wan := m.Delay(0, 1)
	if lan >= 2*time.Millisecond+time.Microsecond {
		t.Fatalf("intra-site delay %v not LAN-class", lan)
	}
	if wan < 10*time.Millisecond {
		t.Fatalf("inter-site delay %v not WAN-class", wan)
	}
	if m.Delay(0, 4) != lan || m.Delay(4, 0) != lan {
		t.Fatal("site latency not deterministic/symmetric")
	}
}
