package overlay

import (
	"math/rand"
	"testing"
	"time"
)

// TestBuildLargeOverlay pins the large-build fast path: a 100k-node build
// must finish in seconds (it was quadratic before joinFrom), produce the
// same JoinDegree-attachment structure as the small path, and stabilize to
// a connected graph.
func TestBuildLargeOverlay(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node build is not short")
	}
	start := time.Now()
	b, err := Build(100_000, DefaultBlatantConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	g := b.Graph()
	if n := len(g.Nodes()); n != 100_000 {
		t.Fatalf("built %d nodes, want 100000", n)
	}
	if md := g.MeanDegree(); md < 2 || md > 10 {
		t.Fatalf("mean degree %.2f outside the join/prune envelope", md)
	}
	stats := g.SamplePathStats(rand.New(rand.NewSource(2)), 16)
	if stats.Unreachable > 0 {
		t.Fatalf("stabilized overlay has %d unreachable pairs", stats.Unreachable)
	}
	t.Logf("100k build: %v, mean degree %.2f, avg path %.2f", elapsed, g.MeanDegree(), stats.AveragePathLength)
}

// TestJoinFromMatchesJoinStructure: both join paths attach a new node to
// exactly JoinDegree distinct existing nodes.
func TestJoinFromMatchesJoinStructure(t *testing.T) {
	cfg := DefaultBlatantConfig()
	b, err := NewBlatant(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var ids []NodeID
	for i := 0; i < 64; i++ {
		id := b.joinFrom(ids)
		want := cfg.JoinDegree
		if len(ids) < want {
			want = len(ids)
		}
		if d := b.graph.Degree(id); d != want {
			t.Fatalf("node %d joined with degree %d, want %d", id, d, want)
		}
		ids = append(ids, id)
	}
}
