package overlay

import "math/rand"

// Distances runs a breadth-first search from src and returns the hop count
// to every reachable node (including src at 0).
func (g *Graph) Distances(src NodeID) map[NodeID]int {
	dist := make(map[NodeID]int, len(g.adj))
	if !g.HasNode(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance reports the hop count between a and b, or -1 when unreachable.
func (g *Graph) Distance(a, b NodeID) int {
	if a == b {
		if g.HasNode(a) {
			return 0
		}
		return -1
	}
	d, ok := g.Distances(a)[b]
	if !ok {
		return -1
	}
	return d
}

// Connected reports whether every node is reachable from every other.
func (g *Graph) Connected() bool {
	nodes := g.Nodes()
	if len(nodes) <= 1 {
		return true
	}
	return len(g.Distances(nodes[0])) == len(nodes)
}

// PathStats summarizes the hop-distance structure of the graph.
type PathStats struct {
	// AveragePathLength is the mean hop count over sampled reachable
	// ordered pairs.
	AveragePathLength float64

	// Diameter is the maximum hop count seen among sampled sources.
	Diameter int

	// Unreachable counts sampled pairs with no path.
	Unreachable int

	// Sources is the number of BFS sources used.
	Sources int
}

// SamplePathStats estimates path statistics using BFS from up to samples
// random sources (all nodes when samples <= 0 or exceeds the node count).
func (g *Graph) SamplePathStats(rng *rand.Rand, samples int) PathStats {
	nodes := g.Nodes()
	var stats PathStats
	if len(nodes) < 2 {
		return stats
	}
	sources := nodes
	if samples > 0 && samples < len(nodes) {
		shuffled := make([]NodeID, len(nodes))
		copy(shuffled, nodes)
		rng.Shuffle(len(shuffled), func(i, k int) { shuffled[i], shuffled[k] = shuffled[k], shuffled[i] })
		sources = shuffled[:samples]
	}
	var totalHops, pairs int
	for _, src := range sources {
		dist := g.Distances(src)
		for _, d := range dist {
			if d == 0 {
				continue
			}
			totalHops += d
			pairs++
			if d > stats.Diameter {
				stats.Diameter = d
			}
		}
		stats.Unreachable += len(nodes) - len(dist)
	}
	stats.Sources = len(sources)
	if pairs > 0 {
		stats.AveragePathLength = float64(totalHops) / float64(pairs)
	}
	return stats
}
