package overlay

import (
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format for visualization
// (e.g. `ariasim -dot overlay.dot && neato -Tsvg overlay.dot`). Nodes are
// emitted in ID order and each undirected link exactly once, so the output
// is deterministic.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "overlay"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  node [shape=point];"); err != nil {
		return err
	}
	for _, id := range g.Nodes() {
		if _, err := fmt.Fprintf(w, "  %d;\n", int32(id)); err != nil {
			return err
		}
	}
	for _, a := range g.Nodes() {
		for _, b := range g.Neighbors(a) {
			if a < b {
				if _, err := fmt.Fprintf(w, "  %d -- %d;\n", int32(a), int32(b)); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
