package overlay

import (
	"math/rand"
	"testing"
)

func allTopologies() []Topology {
	return []Topology{
		TopologyBlatant, TopologyRandom, TopologyRing,
		TopologySmallWorld, TopologyScaleFree,
	}
}

func TestTopologyNamesRoundTrip(t *testing.T) {
	for _, topo := range allTopologies() {
		parsed, err := ParseTopology(topo.String())
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", topo.String(), err)
		}
		if parsed != topo {
			t.Fatalf("round trip %v -> %v", topo, parsed)
		}
	}
	if _, err := ParseTopology("torus"); err == nil {
		t.Fatal("ParseTopology accepted unknown name")
	}
	if Topology(0).String() != "Topology(0)" {
		t.Fatal("unknown topology String wrong")
	}
}

func TestBuildTopologyAllConnected(t *testing.T) {
	for _, topo := range allTopologies() {
		t.Run(topo.String(), func(t *testing.T) {
			g, err := BuildTopology(topo, 120, 4, DefaultBlatantConfig(), rand.New(rand.NewSource(5)))
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() != 120 {
				t.Fatalf("nodes = %d", g.NumNodes())
			}
			if !g.Connected() {
				t.Fatalf("%v overlay disconnected", topo)
			}
		})
	}
}

func TestBuildTopologyRejects(t *testing.T) {
	if _, err := BuildTopology(TopologyRing, 0, 4, DefaultBlatantConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted zero nodes")
	}
	if _, err := BuildTopology(Topology(99), 10, 4, DefaultBlatantConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted invalid topology")
	}
}

func TestRingProperties(t *testing.T) {
	g, err := BuildTopology(TopologyRing, 40, 4, DefaultBlatantConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 40 {
		t.Fatalf("ring links = %d, want 40", g.NumLinks())
	}
	for _, id := range g.Nodes() {
		if g.Degree(id) != 2 {
			t.Fatalf("ring degree(%v) = %d", id, g.Degree(id))
		}
	}
	stats := g.SamplePathStats(rand.New(rand.NewSource(3)), 0)
	if stats.Diameter != 20 {
		t.Fatalf("ring diameter = %d, want 20", stats.Diameter)
	}
}

func TestRandomMeanDegree(t *testing.T) {
	g, err := BuildTopology(TopologyRandom, 200, 6, DefaultBlatantConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if deg := g.MeanDegree(); deg < 5.5 || deg > 7.5 {
		t.Fatalf("random mean degree = %v, want ≈6", deg)
	}
}

func TestSmallWorldShortensRing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ring, err := BuildTopology(TopologyRing, 100, 2, DefaultBlatantConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := BuildTopology(TopologySmallWorld, 100, 4, DefaultBlatantConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	ringAPL := ring.SamplePathStats(rng, 0).AveragePathLength
	swAPL := sw.SamplePathStats(rng, 0).AveragePathLength
	if swAPL >= ringAPL {
		t.Fatalf("small world APL %v not below ring APL %v", swAPL, ringAPL)
	}
}

func TestScaleFreeHasHubs(t *testing.T) {
	g, err := BuildTopology(TopologyScaleFree, 300, 4, DefaultBlatantConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	for _, id := range g.Nodes() {
		if d := g.Degree(id); d > maxDeg {
			maxDeg = d
		}
	}
	// Preferential attachment concentrates links: the top hub should far
	// exceed the mean degree.
	if mean := g.MeanDegree(); float64(maxDeg) < 3*mean {
		t.Fatalf("max degree %d not hub-like vs mean %.1f", maxDeg, mean)
	}
}

func TestTopologyDeterminism(t *testing.T) {
	for _, topo := range allTopologies() {
		build := func() int {
			g, err := BuildTopology(topo, 80, 4, DefaultBlatantConfig(), rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}
			return g.NumLinks()
		}
		if a, b := build(), build(); a != b {
			t.Fatalf("%v builds diverged: %d vs %d links", topo, a, b)
		}
	}
}

func TestBuildTopologySingleNode(t *testing.T) {
	for _, topo := range []Topology{TopologyRandom, TopologyRing, TopologySmallWorld, TopologyScaleFree} {
		g, err := BuildTopology(topo, 1, 4, DefaultBlatantConfig(), rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if g.NumNodes() != 1 || g.NumLinks() != 0 {
			t.Fatalf("%v single-node graph wrong", topo)
		}
	}
}
