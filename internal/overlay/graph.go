// Package overlay provides the peer-to-peer substrate ARiA runs on: an
// undirected logical-link graph, a swarm-inspired topology manager in the
// spirit of BLATANT-S (Brocco & Hirsbrunner, GridPeer 2009) that keeps the
// average path length bounded with few links, and a deterministic
// round-trip latency model.
//
// The paper's evaluation overlay has 500 nodes, a target average path
// length of 9 hops, and an attained mean degree of about 4; the manager in
// this package reproduces that envelope.
package overlay

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a grid node within the overlay. IDs are assigned by the
// deployment (sequential in simulations, registry-assigned in live grids).
type NodeID int32

// String renders the ID for logs.
func (n NodeID) String() string {
	return fmt.Sprintf("n%d", int32(n))
}

// Graph is an undirected graph of overlay links.
//
// Neighbor sets are kept sorted so that all iteration — and therefore every
// simulation built on top — is deterministic. Graph is not safe for
// concurrent use.
type Graph struct {
	adj   map[NodeID][]NodeID
	links int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[NodeID][]NodeID)}
}

// AddNode inserts an isolated node; it is a no-op if the node exists.
func (g *Graph) AddNode(id NodeID) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = nil
	}
}

// HasNode reports whether id is in the graph.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.adj[id]
	return ok
}

// RemoveNode deletes a node and all its links. It reports whether the node
// was present.
func (g *Graph) RemoveNode(id NodeID) bool {
	neighbors, ok := g.adj[id]
	if !ok {
		return false
	}
	for _, nb := range append([]NodeID(nil), neighbors...) {
		g.RemoveLink(id, nb)
	}
	delete(g.adj, id)
	return true
}

// AddLink connects a and b, reporting whether a new link was created.
// Self-links and links to absent nodes are rejected.
func (g *Graph) AddLink(a, b NodeID) bool {
	if a == b || !g.HasNode(a) || !g.HasNode(b) || g.HasLink(a, b) {
		return false
	}
	g.adj[a] = insertSorted(g.adj[a], b)
	g.adj[b] = insertSorted(g.adj[b], a)
	g.links++
	return true
}

// AddLinkCapped connects a and b only when neither endpoint would exceed
// maxDegree links (0 = unbounded), reporting whether a link was created.
// Overlay repair uses it to reconnect without breaking the topology
// generators' degree envelope.
func (g *Graph) AddLinkCapped(a, b NodeID, maxDegree int) bool {
	if maxDegree > 0 && (g.Degree(a) >= maxDegree || g.Degree(b) >= maxDegree) {
		return false
	}
	return g.AddLink(a, b)
}

// RemoveLink disconnects a and b, reporting whether a link was removed.
func (g *Graph) RemoveLink(a, b NodeID) bool {
	if !g.HasLink(a, b) {
		return false
	}
	g.adj[a] = removeSorted(g.adj[a], b)
	g.adj[b] = removeSorted(g.adj[b], a)
	g.links--
	return true
}

// HasLink reports whether a and b are directly connected.
func (g *Graph) HasLink(a, b NodeID) bool {
	nbs, ok := g.adj[a]
	if !ok {
		return false
	}
	i := sort.Search(len(nbs), func(i int) bool { return nbs[i] >= b })
	return i < len(nbs) && nbs[i] == b
}

// Neighbors returns a copy of a node's neighbor list, in ascending ID order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	nbs := g.adj[id]
	if len(nbs) == 0 {
		return nil
	}
	out := make([]NodeID, len(nbs))
	copy(out, nbs)
	return out
}

// Degree reports the number of links at a node.
func (g *Graph) Degree(id NodeID) int {
	return len(g.adj[id])
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int {
	return len(g.adj)
}

// NumLinks reports the number of undirected links.
func (g *Graph) NumLinks() int {
	return g.links
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// MeanDegree reports the average node degree (2·links/nodes).
func (g *Graph) MeanDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.links) / float64(len(g.adj))
}

// RandomNeighbors draws up to k distinct neighbors of id uniformly at
// random, excluding the IDs in skip.
func (g *Graph) RandomNeighbors(rng *rand.Rand, id NodeID, k int, skip map[NodeID]bool) []NodeID {
	nbs := g.adj[id]
	if len(nbs) == 0 || k <= 0 {
		return nil
	}
	candidates := make([]NodeID, 0, len(nbs))
	for _, nb := range nbs {
		if !skip[nb] {
			candidates = append(candidates, nb)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	rng.Shuffle(len(candidates), func(i, k int) {
		candidates[i], candidates[k] = candidates[k], candidates[i]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	return candidates[:k]
}

// RandomNode draws a uniformly random node, or -1 when the graph is empty.
func (g *Graph) RandomNode(rng *rand.Rand) NodeID {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return -1
	}
	return nodes[rng.Intn(len(nodes))]
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
