// Package aria is a from-scratch implementation of ARiA, the fully
// distributed grid meta-scheduling protocol of Brocco, Malatras, Huang and
// Hirsbrunner (ICDCS 2010), together with every substrate its evaluation
// depends on: a deterministic discrete-event simulator, a BLATANT-S-style
// self-organized peer-to-peer overlay, local schedulers (FCFS, SJF, EDF and
// extensions) with the paper's ETTC and NAL cost functions, synthetic
// workload generation, live in-process and TCP transports, baseline
// meta-schedulers, and a full evaluation harness regenerating the paper's
// ten figures.
//
// # Protocol in one paragraph
//
// A job submitted to any node makes that node the job's initiator: it
// floods a REQUEST over the overlay; nodes whose resources match reply with
// an ACCEPT carrying a cost (estimated time to completion for batch
// schedulers, negative accumulated lateness for deadline schedulers); the
// initiator delegates the job to the cheapest offer with an ASSIGN. While
// the job waits in its assignee's queue, periodic INFORM floods advertise
// it; any node that can beat the advertised cost by a threshold claims the
// job, which migrates with a fresh ASSIGN. Jobs never move once running.
//
// # Packages
//
//   - internal/core       — the protocol engine (messages, node state machine)
//   - internal/sched      — local scheduling policies and cost functions
//   - internal/overlay    — p2p overlay graph, swarm topology manager, latency
//   - internal/resource   — node capability and job requirement model
//   - internal/job        — job identity, estimates, deadlines, lifecycle
//   - internal/sim        — discrete-event simulation kernel
//   - internal/transport  — sim / in-process / TCP bindings of the engine
//   - internal/workload   — the paper's synthetic population and job stream
//   - internal/scenario   — Table II catalog and the evaluation runner
//   - internal/baseline   — centralized and random comparison schedulers
//   - internal/metrics    — recorders for the paper's measurements
//   - internal/report     — figure rendering (tables, TSV, ASCII charts)
//   - internal/ctl        — control plane for live nodes
//
// # Tools and examples
//
// cmd/ariasim runs one catalog scenario; cmd/ariaeval regenerates every
// figure; cmd/ariad and cmd/ariactl run a live TCP grid. The examples
// directory holds four runnable walkthroughs (quickstart, deadline,
// expanding, livegrid).
//
// This package itself re-exports the types a downstream application needs
// to embed a grid node or run simulations, so that the internal packages
// remain free to evolve.
package aria

import (
	"math/rand"

	"github.com/smartgrid/aria/internal/core"
	"github.com/smartgrid/aria/internal/job"
	"github.com/smartgrid/aria/internal/metrics"
	"github.com/smartgrid/aria/internal/overlay"
	"github.com/smartgrid/aria/internal/resource"
	"github.com/smartgrid/aria/internal/scenario"
	"github.com/smartgrid/aria/internal/sched"
	"github.com/smartgrid/aria/internal/sim"
	"github.com/smartgrid/aria/internal/transport"
)

// Core protocol surface.
type (
	// Node is one ARiA protocol participant.
	Node = core.Node
	// Config carries the protocol parameters (flood TTLs, inform rate,
	// reschedule threshold, failsafe knobs).
	Config = core.Config
	// Message is an ARiA wire message (REQUEST/ACCEPT/INFORM/ASSIGN).
	Message = core.Message
	// Env is the environment binding a node runs against.
	Env = core.Env
	// Observer receives job lifecycle events.
	Observer = core.Observer

	// NodeID addresses a node on the overlay.
	NodeID = overlay.NodeID
	// NodeProfile describes a node's resources.
	NodeProfile = resource.Profile
	// JobRequirements describe what a job demands of its host.
	JobRequirements = resource.Requirements
	// JobProfile is the wire-visible description of a job.
	JobProfile = job.Profile
	// Policy selects a local scheduling discipline.
	Policy = sched.Policy

	// SimEngine is the deterministic discrete-event kernel.
	SimEngine = sim.Engine
	// SimCluster binds nodes to a simulation.
	SimCluster = transport.SimCluster
	// LiveCluster binds nodes to real time within one process.
	LiveCluster = transport.InprocCluster
	// Scenario is one Table II evaluation configuration.
	Scenario = scenario.Config
	// Result is the measured outcome of one run.
	Result = metrics.Result
)

// Local scheduling policies.
const (
	FCFS     = sched.FCFS
	SJF      = sched.SJF
	EDF      = sched.EDF
	Priority = sched.Priority
	LJF      = sched.LJF
)

// DefaultConfig returns the paper's baseline protocol parameters
// (REQUEST TTL 9 / fanout 4, INFORM TTL 8 / fanout 2, 2 INFORMs per 5 min,
// 3 min reschedule threshold).
func DefaultConfig() Config {
	return core.DefaultConfig()
}

// NewNode constructs a protocol node; see core.NewNode.
func NewNode(
	id NodeID,
	profile NodeProfile,
	policy Policy,
	env Env,
	cfg Config,
	obs Observer,
	art job.ARTModel,
) (*Node, error) {
	return core.NewNode(id, profile, policy, env, cfg, obs, art)
}

// NewSimEngine creates a deterministic simulation kernel.
func NewSimEngine(seed int64) *SimEngine {
	return sim.NewEngine(seed)
}

// NewSimGrid builds an n-node self-organized overlay on a fresh simulation
// engine, ready for AddNode calls.
func NewSimGrid(n int, seed int64) (*SimCluster, error) {
	rng := rand.New(rand.NewSource(seed))
	builder, err := overlay.Build(n, overlay.DefaultBlatantConfig(), rng)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(seed)
	return transport.NewSimCluster(engine, builder.Graph(), overlay.DefaultLatency(uint64(seed))), nil
}

// Scenarios returns the paper's Table II catalog.
func Scenarios() []Scenario {
	return scenario.Catalog()
}

// RunScenario executes one repetition of a named catalog scenario at the
// given scale factor (1.0 = paper scale).
func RunScenario(name string, scale float64, run int) (*Result, error) {
	cfg, err := scenario.ByName(name)
	if err != nil {
		return nil, err
	}
	if scale != 1.0 {
		cfg = cfg.Scaled(scale)
	}
	return scenario.Run(cfg, run)
}
